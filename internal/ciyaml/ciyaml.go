// Package ciyaml parses the subset of YAML used by this repository's GitHub
// Actions workflows and validates their structure, so a malformed workflow
// edit fails `go test ./...` locally instead of being discovered after push.
//
// This is deliberately not a general YAML parser. It supports exactly the
// constructs the workflows use — block mappings, block sequences, flow
// sequences ([a, b]), quoted and plain scalars, literal block scalars (|),
// and full-line comments — and rejects everything else loudly. Anchors,
// aliases, multi-document streams, flow mappings, and folded scalars are out
// of scope; if a workflow grows one of those, extend the subset here first
// so the in-repo validation stays meaningful.
package ciyaml

import (
	"fmt"
	"sort"
	"strings"
)

// Kind discriminates the three node shapes the subset produces.
type Kind int

const (
	// ScalarNode is a leaf string value.
	ScalarNode Kind = iota
	// MapNode is a key→node block or the synthesized map of a "- key: v"
	// sequence item.
	MapNode
	// SeqNode is a block or flow sequence.
	SeqNode
)

// Node is one parsed YAML value. Map preserves no order beyond Keys, which
// records keys in source order for deterministic iteration.
type Node struct {
	Kind   Kind
	Scalar string
	Keys   []string
	Map    map[string]*Node
	Seq    []*Node
	Line   int
}

// Get returns the value for key in a mapping node, or nil when the node is
// not a mapping or lacks the key.
func (n *Node) Get(key string) *Node {
	if n == nil || n.Kind != MapNode {
		return nil
	}
	return n.Map[key]
}

// Str returns the scalar value, or "" for nil / non-scalar nodes.
func (n *Node) Str() string {
	if n == nil || n.Kind != ScalarNode {
		return ""
	}
	return n.Scalar
}

// line is one significant source line after comment/blank stripping.
type line struct {
	indent int
	text   string
	num    int
}

// Parse parses a workflow document into its root node. The root of every
// workflow is a mapping; anything else is an error.
func Parse(src []byte) (*Node, error) {
	lines, err := splitLines(src)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("ciyaml: empty document")
	}
	if lines[0].indent != 0 {
		return nil, fmt.Errorf("ciyaml: line %d: document must start at column 0", lines[0].num)
	}
	p := &parser{lines: lines}
	root, err := p.parseBlock(0)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.lines) {
		return nil, fmt.Errorf("ciyaml: line %d: unexpected content after document", p.lines[p.pos].num)
	}
	if root.Kind != MapNode {
		return nil, fmt.Errorf("ciyaml: line %d: workflow root must be a mapping", root.Line)
	}
	return root, nil
}

func splitLines(src []byte) ([]line, error) {
	var out []line
	for i, raw := range strings.Split(string(src), "\n") {
		num := i + 1
		trimmed := strings.TrimRight(raw, " \r")
		indent := 0
		for indent < len(trimmed) && trimmed[indent] == ' ' {
			indent++
		}
		rest := trimmed[indent:]
		if rest == "" || strings.HasPrefix(rest, "#") {
			continue
		}
		if strings.ContainsRune(trimmed[:indent], '\t') || strings.HasPrefix(rest, "\t") {
			return nil, fmt.Errorf("ciyaml: line %d: tab in indentation", num)
		}
		out = append(out, line{indent: indent, text: rest, num: num})
	}
	return out, nil
}

type parser struct {
	lines []line
	pos   int
}

// parseBlock parses the block starting at the current line, which must sit
// exactly at indent; it is a sequence if the first line is a dash item and a
// mapping otherwise.
func (p *parser) parseBlock(indent int) (*Node, error) {
	ln := p.lines[p.pos]
	if ln.indent != indent {
		return nil, fmt.Errorf("ciyaml: line %d: expected indent %d, got %d", ln.num, indent, ln.indent)
	}
	if strings.HasPrefix(ln.text, "- ") || ln.text == "-" {
		return p.parseSeq(indent)
	}
	return p.parseMap(indent)
}

func (p *parser) parseMap(indent int) (*Node, error) {
	node := &Node{Kind: MapNode, Map: map[string]*Node{}, Line: p.lines[p.pos].num}
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, fmt.Errorf("ciyaml: line %d: unexpected indent %d inside mapping at %d", ln.num, ln.indent, indent)
		}
		if strings.HasPrefix(ln.text, "- ") || ln.text == "-" {
			return nil, fmt.Errorf("ciyaml: line %d: sequence item inside mapping", ln.num)
		}
		key, rest, err := splitKey(ln)
		if err != nil {
			return nil, err
		}
		if _, dup := node.Map[key]; dup {
			return nil, fmt.Errorf("ciyaml: line %d: duplicate key %q", ln.num, key)
		}
		p.pos++
		val, err := p.parseValue(rest, indent, ln.num)
		if err != nil {
			return nil, err
		}
		node.Keys = append(node.Keys, key)
		node.Map[key] = val
	}
	return node, nil
}

func (p *parser) parseSeq(indent int) (*Node, error) {
	node := &Node{Kind: SeqNode, Line: p.lines[p.pos].num}
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent != indent || !(strings.HasPrefix(ln.text, "- ") || ln.text == "-") {
			if ln.indent > indent {
				return nil, fmt.Errorf("ciyaml: line %d: unexpected indent inside sequence", ln.num)
			}
			break
		}
		item := strings.TrimPrefix(strings.TrimPrefix(ln.text, "-"), " ")
		if item == "" {
			return nil, fmt.Errorf("ciyaml: line %d: empty sequence item", ln.num)
		}
		if isMapStart(item) {
			// "- key: value" starts an inline mapping whose further keys
			// align under the item content (indent+2). Rewriting the line in
			// place lets parseMap consume it like any other first pair; the
			// parser only ever moves forward, so the mutation is safe.
			p.lines[p.pos] = line{indent: indent + 2, text: item, num: ln.num}
			m, err := p.parseMap(indent + 2)
			if err != nil {
				return nil, err
			}
			node.Seq = append(node.Seq, m)
			continue
		}
		p.pos++
		node.Seq = append(node.Seq, &Node{Kind: ScalarNode, Scalar: unquote(item), Line: ln.num})
	}
	return node, nil
}

// parseValue parses what follows "key:" — an inline scalar, a flow sequence,
// a literal block scalar, or (when rest is empty) a nested block.
func (p *parser) parseValue(rest string, indent, num int) (*Node, error) {
	switch {
	case rest == "":
		if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
			return p.parseBlock(p.lines[p.pos].indent)
		}
		return &Node{Kind: ScalarNode, Scalar: "", Line: num}, nil
	case rest == "|" || rest == "|-":
		return p.parseLiteral(indent, num)
	case strings.HasPrefix(rest, "["):
		return parseFlowSeq(rest, num)
	case strings.HasPrefix(rest, "{"):
		return nil, fmt.Errorf("ciyaml: line %d: flow mappings are outside the supported subset", num)
	case strings.HasPrefix(rest, "&") || strings.HasPrefix(rest, "*"):
		return nil, fmt.Errorf("ciyaml: line %d: anchors/aliases are outside the supported subset", num)
	default:
		return &Node{Kind: ScalarNode, Scalar: unquote(rest), Line: num}, nil
	}
}

// parseLiteral consumes a "|" block scalar: every following line more
// indented than the key, dedented to the block's minimum indentation.
func (p *parser) parseLiteral(indent, num int) (*Node, error) {
	start := p.pos
	end := start
	minIndent := -1
	for end < len(p.lines) && p.lines[end].indent > indent {
		if minIndent == -1 || p.lines[end].indent < minIndent {
			minIndent = p.lines[end].indent
		}
		end++
	}
	if end == start {
		return nil, fmt.Errorf("ciyaml: line %d: empty literal block", num)
	}
	var b strings.Builder
	for _, ln := range p.lines[start:end] {
		b.WriteString(strings.Repeat(" ", ln.indent-minIndent))
		b.WriteString(ln.text)
		b.WriteString("\n")
	}
	p.pos = end
	return &Node{Kind: ScalarNode, Scalar: b.String(), Line: num}, nil
}

func parseFlowSeq(rest string, num int) (*Node, error) {
	if !strings.HasSuffix(rest, "]") {
		return nil, fmt.Errorf("ciyaml: line %d: unterminated flow sequence", num)
	}
	inner := strings.TrimSpace(rest[1 : len(rest)-1])
	node := &Node{Kind: SeqNode, Line: num}
	if inner == "" {
		return node, nil
	}
	for _, part := range strings.Split(inner, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("ciyaml: line %d: empty element in flow sequence", num)
		}
		node.Seq = append(node.Seq, &Node{Kind: ScalarNode, Scalar: unquote(part), Line: num})
	}
	return node, nil
}

// splitKey separates "key: rest" / "key:", respecting that ${{ ... }}
// expressions never appear in keys in this subset.
func splitKey(ln line) (key, rest string, err error) {
	idx := strings.Index(ln.text, ":")
	if idx <= 0 {
		return "", "", fmt.Errorf("ciyaml: line %d: expected \"key: value\"", ln.num)
	}
	key = unquote(strings.TrimSpace(ln.text[:idx]))
	rest = strings.TrimSpace(ln.text[idx+1:])
	if key == "" {
		return "", "", fmt.Errorf("ciyaml: line %d: empty key", ln.num)
	}
	return key, rest, nil
}

func isMapStart(item string) bool {
	idx := strings.Index(item, ": ")
	if idx <= 0 {
		idx = len(item) - 1
		if !strings.HasSuffix(item, ":") {
			return false
		}
	}
	head := item[:idx]
	// A scalar like "127.0.0.1:0" is not a map start: keys in this subset
	// are bare identifiers (letters, digits, dash, underscore).
	for _, r := range head {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			return false
		}
	}
	return true
}

func unquote(s string) string {
	if len(s) >= 2 {
		if (s[0] == '"' && s[len(s)-1] == '"') || (s[0] == '\'' && s[len(s)-1] == '\'') {
			return s[1 : len(s)-1]
		}
	}
	return s
}

// Problem is one structural defect found by CheckWorkflow.
type Problem struct {
	Line int
	Msg  string
}

func (p Problem) String() string { return fmt.Sprintf("line %d: %s", p.Line, p.Msg) }

// knownEvents are the trigger names the validator accepts under "on:".
var knownEvents = map[string]bool{
	"push": true, "pull_request": true, "schedule": true,
	"workflow_dispatch": true, "workflow_call": true,
}

// CheckWorkflow validates the structural invariants every workflow in this
// repo must satisfy: a name, at least one known trigger, and jobs that each
// declare runs-on and a non-empty steps list where every step either `uses`
// a version-pinned action or `run`s a command.
func CheckWorkflow(doc *Node) []Problem {
	var probs []Problem
	bad := func(n *Node, format string, args ...any) {
		ln := 0
		if n != nil {
			ln = n.Line
		}
		probs = append(probs, Problem{Line: ln, Msg: fmt.Sprintf(format, args...)})
	}

	if doc.Get("name").Str() == "" {
		bad(doc, "workflow has no name")
	}
	checkTriggers(doc, bad)

	jobs := doc.Get("jobs")
	if jobs == nil || jobs.Kind != MapNode || len(jobs.Keys) == 0 {
		bad(doc, "workflow declares no jobs")
		return probs
	}
	for _, id := range jobs.Keys {
		checkJob(id, jobs.Map[id], bad)
	}
	return probs
}

func checkTriggers(doc *Node, bad func(*Node, string, ...any)) {
	on := doc.Get("on")
	if on == nil {
		bad(doc, "workflow has no \"on:\" triggers")
		return
	}
	var events []string
	switch on.Kind {
	case ScalarNode:
		events = []string{on.Scalar}
	case SeqNode:
		for _, e := range on.Seq {
			events = append(events, e.Str())
		}
	case MapNode:
		events = on.Keys
	}
	if len(events) == 0 {
		bad(on, "\"on:\" lists no events")
	}
	for _, e := range events {
		if !knownEvents[e] {
			bad(on, "unknown trigger event %q", e)
		}
	}
}

func checkJob(id string, job *Node, bad func(*Node, string, ...any)) {
	if job == nil || job.Kind != MapNode {
		bad(job, "job %q is not a mapping", id)
		return
	}
	if job.Get("runs-on").Str() == "" {
		bad(job, "job %q has no runs-on", id)
	}
	if m := job.Get("strategy").Get("matrix"); job.Get("strategy") != nil && (m == nil || m.Kind != MapNode || len(m.Keys) == 0) {
		bad(job.Get("strategy"), "job %q: strategy without a matrix mapping", id)
	}
	steps := job.Get("steps")
	if steps == nil || steps.Kind != SeqNode || len(steps.Seq) == 0 {
		bad(job, "job %q has no steps", id)
		return
	}
	for i, step := range steps.Seq {
		checkStep(id, i, step, bad)
	}
}

func checkStep(job string, i int, step *Node, bad func(*Node, string, ...any)) {
	if step.Kind != MapNode {
		bad(step, "job %q step %d is not a mapping", job, i+1)
		return
	}
	uses, run := step.Get("uses"), step.Get("run")
	switch {
	case uses == nil && run == nil:
		bad(step, "job %q step %d has neither uses nor run", job, i+1)
	case uses != nil && run != nil:
		bad(step, "job %q step %d has both uses and run", job, i+1)
	case uses != nil:
		ref := uses.Str()
		at := strings.LastIndex(ref, "@")
		if !strings.Contains(ref, "/") || at <= 0 || at == len(ref)-1 {
			bad(uses, "job %q step %d: uses %q is not pinned as owner/repo@ref", job, i+1, ref)
		}
	}
}

// ScriptRefs returns every repo script path (scripts/*.sh) mentioned in any
// run step of the workflow, sorted and deduplicated, so callers can verify
// the referenced files exist.
func ScriptRefs(doc *Node) []string {
	seen := map[string]bool{}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		switch n.Kind {
		case ScalarNode:
			for _, f := range strings.Fields(n.Scalar) {
				if strings.HasPrefix(f, "scripts/") && strings.HasSuffix(f, ".sh") {
					seen[f] = true
				}
			}
		case MapNode:
			for _, k := range n.Keys {
				walk(n.Map[k])
			}
		case SeqNode:
			for _, e := range n.Seq {
				walk(e)
			}
		}
	}
	walk(doc)
	refs := make([]string, 0, len(seen))
	for r := range seen {
		refs = append(refs, r)
	}
	sort.Strings(refs)
	return refs
}
