// Package codec serializes trajectories for storage and transmission — the
// resource pressures that motivate compression in the paper's introduction.
//
// Three formats are supported:
//
//   - a compact binary format (delta + zigzag varint encoding with CRC-32
//     integrity checks) for storage;
//   - CSV for interchange with spreadsheet/analysis tooling;
//   - GeoJSON export for display on maps.
//
// The binary format quantizes timestamps to milliseconds and coordinates to
// millimetres — far below GPS accuracy — so a decode(encode(p)) round trip
// is lossless for all practical purposes and never perturbs sample ordering
// for samples more than 1 ms apart.
package codec

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/trajectory"
)

// Named pairs a trajectory with the identifier of its moving object.
type Named struct {
	ID   string
	Traj trajectory.Trajectory
}

const (
	magic   = "TRJC"
	version = 1

	timeUnit  = 1e-3 // seconds per time tick (milliseconds)
	coordUnit = 1e-3 // metres per coordinate tick (millimetres)

	// maxSamples bounds a single record to guard decoders against corrupt
	// or hostile length prefixes.
	maxSamples = 1 << 28
	// maxIDLen bounds object identifier length.
	maxIDLen = 1 << 16
)

// ErrFormat is wrapped by all decoding errors caused by malformed input.
var ErrFormat = errors.New("codec: malformed input")

// EncodeFile writes a set of named trajectories in the binary format.
func EncodeFile(w io.Writer, ts []Named) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	if err := bw.WriteByte(version); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(ts))); err != nil {
		return err
	}
	for _, t := range ts {
		if len(t.ID) > maxIDLen {
			return fmt.Errorf("codec: object id longer than %d bytes", maxIDLen)
		}
		if err := putUvarint(uint64(len(t.ID))); err != nil {
			return err
		}
		if _, err := bw.WriteString(t.ID); err != nil {
			return err
		}
		if err := encodeTrajectory(bw, t.Traj); err != nil {
			return fmt.Errorf("codec: trajectory %q: %w", t.ID, err)
		}
	}
	return bw.Flush()
}

// DecodeFile reads a set of named trajectories written by EncodeFile.
func DecodeFile(r io.Reader) ([]Named, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic)+1)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrFormat, err)
	}
	if string(head[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrFormat, head[:len(magic)])
	}
	if head[len(magic)] != version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrFormat, head[len(magic)])
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: count: %v", ErrFormat, err)
	}
	if count > maxSamples {
		return nil, fmt.Errorf("%w: implausible trajectory count %d", ErrFormat, count)
	}
	out := make([]Named, 0, count)
	for i := uint64(0); i < count; i++ {
		idLen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: id length: %v", ErrFormat, err)
		}
		if idLen > maxIDLen {
			return nil, fmt.Errorf("%w: id length %d too large", ErrFormat, idLen)
		}
		id := make([]byte, idLen)
		if _, err := io.ReadFull(br, id); err != nil {
			return nil, fmt.Errorf("%w: id: %v", ErrFormat, err)
		}
		p, err := decodeTrajectory(br)
		if err != nil {
			return nil, fmt.Errorf("codec: trajectory %q: %w", id, err)
		}
		out = append(out, Named{ID: string(id), Traj: p})
	}
	return out, nil
}

// Encode writes a single trajectory in the binary record format.
func Encode(w io.Writer, p trajectory.Trajectory) error {
	bw := bufio.NewWriter(w)
	if err := encodeTrajectory(bw, p); err != nil {
		return err
	}
	return bw.Flush()
}

// Decode reads a single trajectory record.
func Decode(r io.Reader) (trajectory.Trajectory, error) {
	return decodeTrajectory(bufio.NewReader(r))
}

func quantize(v float64, unit float64) (int64, error) {
	q := math.Round(v / unit)
	if q > math.MaxInt64/2 || q < math.MinInt64/2 || math.IsNaN(q) {
		return 0, fmt.Errorf("value %v out of encodable range", v)
	}
	return int64(q), nil
}

func encodeTrajectory(bw *bufio.Writer, p trajectory.Trajectory) error {
	crc := crc32.NewIEEE()
	w := io.MultiWriter(bw, crc)
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := w.Write(buf[:n])
		return err
	}
	putVarint := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := w.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(p.Len())); err != nil {
		return err
	}
	var pt, px, py int64
	for i, s := range p {
		qt, err := quantize(s.T, timeUnit)
		if err != nil {
			return fmt.Errorf("sample %d time: %w", i, err)
		}
		qx, err := quantize(s.X, coordUnit)
		if err != nil {
			return fmt.Errorf("sample %d x: %w", i, err)
		}
		qy, err := quantize(s.Y, coordUnit)
		if err != nil {
			return fmt.Errorf("sample %d y: %w", i, err)
		}
		if err := putVarint(qt - pt); err != nil {
			return err
		}
		if err := putVarint(qx - px); err != nil {
			return err
		}
		if err := putVarint(qy - py); err != nil {
			return err
		}
		pt, px, py = qt, qx, qy
	}
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], crc.Sum32())
	_, err := bw.Write(sum[:])
	return err
}

func decodeTrajectory(br *bufio.Reader) (trajectory.Trajectory, error) {
	crc := crc32.NewIEEE()
	r := &checksumReader{r: br, crc: crc}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("%w: sample count: %v", ErrFormat, err)
	}
	if n > maxSamples {
		return nil, fmt.Errorf("%w: implausible sample count %d", ErrFormat, n)
	}
	p := make(trajectory.Trajectory, 0, n)
	var pt, px, py int64
	for i := uint64(0); i < n; i++ {
		dt, err := binary.ReadVarint(r)
		if err != nil {
			return nil, fmt.Errorf("%w: sample %d: %v", ErrFormat, i, err)
		}
		dx, err := binary.ReadVarint(r)
		if err != nil {
			return nil, fmt.Errorf("%w: sample %d: %v", ErrFormat, i, err)
		}
		dy, err := binary.ReadVarint(r)
		if err != nil {
			return nil, fmt.Errorf("%w: sample %d: %v", ErrFormat, i, err)
		}
		// int64 delta accumulation is exact (unlike float stepping): each
		// encoded delta is an integer, so the running sums reproduce the
		// quantized values bit-for-bit.
		pt += dt
		px += dx
		py += dy
		p = append(p, trajectory.Sample{
			T: float64(pt) * timeUnit,
			X: float64(px) * coordUnit,
			Y: float64(py) * coordUnit,
		})
	}
	want := crc.Sum32()
	var sum [4]byte
	if _, err := io.ReadFull(br, sum[:]); err != nil {
		return nil, fmt.Errorf("%w: checksum: %v", ErrFormat, err)
	}
	if got := binary.BigEndian.Uint32(sum[:]); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (stored %08x, computed %08x)", ErrFormat, got, want)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	return p, nil
}

// checksumReader feeds every byte read through the CRC while satisfying
// io.ByteReader for the varint decoders.
type checksumReader struct {
	r   *bufio.Reader
	crc io.Writer
}

func (c *checksumReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err != nil {
		return 0, err
	}
	if _, err := c.crc.Write([]byte{b}); err != nil {
		return 0, err
	}
	return b, nil
}

func (c *checksumReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 {
		if _, werr := c.crc.Write(p[:n]); werr != nil {
			return n, werr
		}
	}
	return n, err
}
