package codec

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/geo"
	"repro/internal/gpsgen"
	"repro/internal/trajectory"
)

func sampleTrajectories() []Named {
	g := gpsgen.New(1, gpsgen.Config{})
	return []Named{
		{ID: "car-1", Traj: g.Trip(gpsgen.Urban, 600)},
		{ID: "car-2", Traj: g.Trip(gpsgen.Rural, 900)},
		{ID: "", Traj: g.Trip(gpsgen.Mixed, 300)}, // empty id is legal
	}
}

func trajAlmostEqual(a, b trajectory.Trajectory, eps float64) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := range a {
		if math.Abs(a[i].T-b[i].T) > eps ||
			math.Abs(a[i].X-b[i].X) > eps ||
			math.Abs(a[i].Y-b[i].Y) > eps {
			return false
		}
	}
	return true
}

func TestBinaryRoundTrip(t *testing.T) {
	ts := sampleTrajectories()
	var buf bytes.Buffer
	if err := EncodeFile(&buf, ts); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ts) {
		t.Fatalf("decoded %d trajectories, want %d", len(got), len(ts))
	}
	for i := range ts {
		if got[i].ID != ts[i].ID {
			t.Errorf("trajectory %d id = %q, want %q", i, got[i].ID, ts[i].ID)
		}
		if !trajAlmostEqual(got[i].Traj, ts[i].Traj, 0.0011) {
			t.Errorf("trajectory %d does not round-trip within quantization", i)
		}
	}
}

func TestBinaryRoundTripSingle(t *testing.T) {
	p := sampleTrajectories()[0].Traj
	var buf bytes.Buffer
	if err := Encode(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !trajAlmostEqual(got, p, 0.0011) {
		t.Error("single-trajectory round trip failed")
	}
}

func TestBinaryEmptyTrajectory(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeFile(&buf, []Named{{ID: "empty"}}); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Traj.Len() != 0 {
		t.Errorf("empty trajectory round-tripped to %d samples", got[0].Traj.Len())
	}
}

func TestBinaryCompactness(t *testing.T) {
	// Delta+varint coding should be well below the 24 bytes/sample of raw
	// float64 triples for GPS-like data.
	p := sampleTrajectories()[0].Traj
	var buf bytes.Buffer
	if err := Encode(&buf, p); err != nil {
		t.Fatal(err)
	}
	perSample := float64(buf.Len()) / float64(p.Len())
	if perSample > 16 {
		t.Errorf("binary encoding uses %.1f bytes/sample, want < 16", perSample)
	}
}

func TestBinaryDetectsCorruption(t *testing.T) {
	ts := sampleTrajectories()[:1]
	var buf bytes.Buffer
	if err := EncodeFile(&buf, ts); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip one bit somewhere in the payload (past the header).
	data[len(data)/2] ^= 0x10
	if _, err := DecodeFile(bytes.NewReader(data)); err == nil {
		t.Error("corrupted payload decoded without error")
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("x"),
		[]byte("NOPE....."),
		[]byte("TRJC\x02"), // wrong version
		[]byte("TRJC\x01\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"), // absurd count
	}
	for i, data := range cases {
		if _, err := DecodeFile(bytes.NewReader(data)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		} else if !errors.Is(err, ErrFormat) {
			t.Errorf("case %d: error %v does not wrap ErrFormat", i, err)
		}
	}
}

func TestBinaryTruncation(t *testing.T) {
	ts := sampleTrajectories()
	var buf bytes.Buffer
	if err := EncodeFile(&buf, ts); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{6, len(data) / 3, len(data) - 2} {
		if _, err := DecodeFile(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ts := []Named{
		{ID: "a", Traj: sampleTrajectories()[0].Traj},
		{ID: "b", Traj: sampleTrajectories()[1].Traj},
	}
	var buf bytes.Buffer
	if err := EncodeCSV(&buf, ts); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != "a" || got[1].ID != "b" {
		t.Fatalf("decoded ids: %v, %v", got[0].ID, got[1].ID)
	}
	for i := range ts {
		if !trajAlmostEqual(got[i].Traj, ts[i].Traj, 1e-9) {
			t.Errorf("CSV round trip lost precision on %q", ts[i].ID)
		}
	}
}

func TestCSVRejectsMalformed(t *testing.T) {
	cases := []string{
		"",                             // no header
		"a,b,c,d\n",                    // wrong header
		"id,t,x,y\n1,notanumber,2,3\n", // bad float
		"id,t,x,y\nc,5,0,0\nc,5,1,1\n", // duplicate timestamp
		"id,t,x,y\nc,5,0\n",            // wrong column count
	}
	for i, in := range cases {
		if _, err := DecodeCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestGeoJSONPlanar(t *testing.T) {
	ts := sampleTrajectories()[:1]
	var buf bytes.Buffer
	if err := EncodeGeoJSON(&buf, ts, nil); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc["type"] != "FeatureCollection" {
		t.Errorf("type = %v", doc["type"])
	}
	features := doc["features"].([]any)
	if len(features) != 1 {
		t.Fatalf("features = %d", len(features))
	}
	geom := features[0].(map[string]any)["geometry"].(map[string]any)
	coords := geom["coordinates"].([]any)
	if len(coords) != ts[0].Traj.Len() {
		t.Errorf("coordinates = %d, want %d", len(coords), ts[0].Traj.Len())
	}
}

func TestGeoJSONProjected(t *testing.T) {
	origin := geo.LatLon{Lat: 52.22, Lon: 6.89}
	proj, err := geo.NewProjector(origin)
	if err != nil {
		t.Fatal(err)
	}
	ts := []Named{{ID: "x", Traj: trajectory.MustNew([]trajectory.Sample{
		trajectory.S(0, 0, 0), trajectory.S(10, 1000, 0),
	})}}
	var buf bytes.Buffer
	if err := EncodeGeoJSON(&buf, ts, proj); err != nil {
		t.Fatal(err)
	}
	var doc geoJSONFeatureCollection
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	c0 := doc.Features[0].Geometry.Coordinates[0]
	if math.Abs(c0[0]-origin.Lon) > 1e-9 || math.Abs(c0[1]-origin.Lat) > 1e-9 {
		t.Errorf("first coordinate %v, want origin %v", c0, origin)
	}
	c1 := doc.Features[0].Geometry.Coordinates[1]
	if c1[0] <= origin.Lon {
		t.Errorf("eastward motion did not increase longitude: %v", c1)
	}
}

// Round-trip property across random data.
func TestBinaryRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		b := trajectory.NewBuilder(0)
		tt := rng.Float64() * 1000
		for i := 0; i < 1+rng.Intn(200); i++ {
			tt += 0.01 + rng.Float64()*30
			if err := b.AppendPoint(tt, rng.NormFloat64()*1e5, rng.NormFloat64()*1e5); err != nil {
				t.Fatal(err)
			}
		}
		p := b.Trajectory()
		var buf bytes.Buffer
		if err := Encode(&buf, p); err != nil {
			t.Fatal(err)
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !trajAlmostEqual(got, p, 0.0011) {
			t.Fatalf("trial %d: round trip exceeded quantization error", trial)
		}
	}
}
