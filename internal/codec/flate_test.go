package codec

import (
	"bytes"
	"testing"
)

func TestCompressedContainerRoundTrip(t *testing.T) {
	ts := sampleTrajectories()
	var buf bytes.Buffer
	if err := EncodeFileCompressed(&buf, ts); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFileCompressed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ts) {
		t.Fatalf("decoded %d trajectories, want %d", len(got), len(ts))
	}
	for i := range ts {
		if got[i].ID != ts[i].ID || !trajAlmostEqual(got[i].Traj, ts[i].Traj, 0.0011) {
			t.Errorf("trajectory %d does not round-trip", i)
		}
	}
}

func TestCompressedContainerShrinks(t *testing.T) {
	ts := sampleTrajectories()
	var plain, packed bytes.Buffer
	if err := EncodeFile(&plain, ts); err != nil {
		t.Fatal(err)
	}
	if err := EncodeFileCompressed(&packed, ts); err != nil {
		t.Fatal(err)
	}
	if packed.Len() >= plain.Len() {
		t.Errorf("flate container %d B not below plain %d B", packed.Len(), plain.Len())
	}
}

func TestCompressedContainerRejectsPlain(t *testing.T) {
	ts := sampleTrajectories()[:1]
	var plain bytes.Buffer
	if err := EncodeFile(&plain, ts); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeFileCompressed(&plain); err == nil {
		t.Error("plain container accepted by compressed decoder")
	}
	if _, err := DecodeFileCompressed(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Corrupt flate payload.
	var packed bytes.Buffer
	if err := EncodeFileCompressed(&packed, ts); err != nil {
		t.Fatal(err)
	}
	data := packed.Bytes()
	data[len(data)/2] ^= 0xff
	if _, err := DecodeFileCompressed(bytes.NewReader(data)); err == nil {
		t.Error("corrupt payload accepted")
	}
}
