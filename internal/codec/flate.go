package codec

import (
	"bufio"
	"compress/flate"
	"fmt"
	"io"
)

// Entropy-coded container: the binary format wrapped in DEFLATE. Lossy
// trajectory compression (fewer points) and lossless entropy coding (fewer
// bits per point) compose; this container applies both, typically removing
// another ~30% from the delta+varint encoding.

// flateMagic distinguishes the compressed container from the plain one.
const flateMagic = "TRJZ"

// EncodeFileCompressed writes named trajectories as a DEFLATE-compressed
// binary container.
func EncodeFileCompressed(w io.Writer, ts []Named) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(flateMagic); err != nil {
		return err
	}
	fw, err := flate.NewWriter(bw, flate.BestCompression)
	if err != nil {
		return fmt.Errorf("codec: flate: %w", err)
	}
	if err := EncodeFile(fw, ts); err != nil {
		return err
	}
	if err := fw.Close(); err != nil {
		return fmt.Errorf("codec: flate: %w", err)
	}
	return bw.Flush()
}

// DecodeFileCompressed reads a container written by EncodeFileCompressed.
func DecodeFileCompressed(r io.Reader) ([]Named, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(flateMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrFormat, err)
	}
	if string(head) != flateMagic {
		return nil, fmt.Errorf("%w: bad magic %q (want %q)", ErrFormat, head, flateMagic)
	}
	fr := flate.NewReader(br)
	defer fr.Close()
	return DecodeFile(fr)
}
