package codec

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/trajectory"
)

// GPX interchange: the de-facto consumer GPS file format. Import converts
// WGS-84 track points to the local planar frame with a projector centred on
// the first point (or a caller-provided one); export reverses the
// projection. Timestamps map to seconds relative to the GPX epoch below.

// gpxEpoch anchors the conversion between absolute GPX times and the
// library's relative seconds.
var gpxEpoch = time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)

type gpxFile struct {
	XMLName xml.Name   `xml:"gpx"`
	Version string     `xml:"version,attr"`
	Creator string     `xml:"creator,attr"`
	Tracks  []gpxTrack `xml:"trk"`
}

type gpxTrack struct {
	Name     string       `xml:"name,omitempty"`
	Segments []gpxSegment `xml:"trkseg"`
}

type gpxSegment struct {
	Points []gpxPoint `xml:"trkpt"`
}

type gpxPoint struct {
	Lat  float64 `xml:"lat,attr"`
	Lon  float64 `xml:"lon,attr"`
	Time string  `xml:"time,omitempty"`
}

// EncodeGPX writes named trajectories as GPX 1.1 tracks. proj converts the
// planar coordinates back to WGS-84 and must not be nil.
func EncodeGPX(w io.Writer, ts []Named, proj *geo.Projector) error {
	if proj == nil {
		return fmt.Errorf("codec: EncodeGPX requires a projector")
	}
	doc := gpxFile{Version: "1.1", Creator: "trajcomp"}
	for _, t := range ts {
		seg := gpxSegment{Points: make([]gpxPoint, t.Traj.Len())}
		for i, s := range t.Traj {
			ll := proj.ToLatLon(s.Pos())
			seg.Points[i] = gpxPoint{
				Lat:  ll.Lat,
				Lon:  ll.Lon,
				Time: gpxEpoch.Add(time.Duration(s.T * float64(time.Second))).Format(time.RFC3339Nano),
			}
		}
		doc.Tracks = append(doc.Tracks, gpxTrack{Name: t.ID, Segments: []gpxSegment{seg}})
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("codec: gpx encode: %w", err)
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// DecodeGPX reads GPX tracks into named planar trajectories. When proj is
// nil, a projector centred on the first track point is created and
// returned; otherwise the given projector is used and returned. Track
// segments of one track are concatenated; unnamed tracks are numbered.
// Points without a <time> element are rejected: the paper's entire premise
// is time-stamped positions.
func DecodeGPX(r io.Reader, proj *geo.Projector) ([]Named, *geo.Projector, error) {
	var doc gpxFile
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, nil, fmt.Errorf("%w: gpx: %v", ErrFormat, err)
	}
	var out []Named
	for ti, trk := range doc.Tracks {
		b := trajectory.NewBuilder(0)
		for _, seg := range trk.Segments {
			for _, pt := range seg.Points {
				ll := geo.LatLon{Lat: pt.Lat, Lon: pt.Lon}
				if !ll.Valid() {
					return nil, nil, fmt.Errorf("%w: gpx: invalid coordinate %+v", ErrFormat, ll)
				}
				if pt.Time == "" {
					return nil, nil, fmt.Errorf("%w: gpx: track point without time", ErrFormat)
				}
				ts, err := time.Parse(time.RFC3339Nano, pt.Time)
				if err != nil {
					return nil, nil, fmt.Errorf("%w: gpx: time %q: %v", ErrFormat, pt.Time, err)
				}
				if proj == nil {
					p, err := geo.NewProjector(ll)
					if err != nil {
						return nil, nil, fmt.Errorf("%w: gpx: %v", ErrFormat, err)
					}
					proj = p
				}
				pos := proj.ToPlanar(ll)
				if err := b.AppendPoint(ts.Sub(gpxEpoch).Seconds(), pos.X, pos.Y); err != nil {
					return nil, nil, fmt.Errorf("%w: gpx: %v", ErrFormat, err)
				}
			}
		}
		name := trk.Name
		if name == "" {
			name = fmt.Sprintf("track-%d", ti)
		}
		out = append(out, Named{ID: name, Traj: b.Trajectory()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, proj, nil
}
