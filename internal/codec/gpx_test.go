package codec

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geo"
)

func TestGPXRoundTrip(t *testing.T) {
	proj, err := geo.NewProjector(geo.LatLon{Lat: 52.22, Lon: 6.89})
	if err != nil {
		t.Fatal(err)
	}
	ts := sampleTrajectories()[:2]
	var buf bytes.Buffer
	if err := EncodeGPX(&buf, ts, proj); err != nil {
		t.Fatal(err)
	}
	got, gotProj, err := DecodeGPX(&buf, proj)
	if err != nil {
		t.Fatal(err)
	}
	if gotProj != proj {
		t.Error("given projector not returned")
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d tracks", len(got))
	}
	for i := range ts {
		// GPX stores lat/lon text; round trip within a few centimetres and
		// sub-millisecond time.
		a, b := ts[i].Traj, got[i].Traj
		if a.Len() != b.Len() {
			t.Fatalf("track %d: %d vs %d points", i, a.Len(), b.Len())
		}
		for j := range a {
			if d := a[j].Pos().Dist(b[j].Pos()); d > 0.05 {
				t.Fatalf("track %d point %d: %.3f m apart", i, j, d)
			}
			if dt := a[j].T - b[j].T; dt > 1e-3 || dt < -1e-3 {
				t.Fatalf("track %d point %d: time drift %v", i, j, dt)
			}
		}
	}
}

func TestGPXAutoProjector(t *testing.T) {
	in := `<?xml version="1.0"?>
<gpx version="1.1" creator="test">
  <trk><name>walk</name><trkseg>
    <trkpt lat="52.2200" lon="6.8900"><time>2000-01-01T00:00:00Z</time></trkpt>
    <trkpt lat="52.2210" lon="6.8910"><time>2000-01-01T00:00:30Z</time></trkpt>
  </trkseg></trk>
</gpx>`
	got, proj, err := DecodeGPX(strings.NewReader(in), nil)
	if err != nil {
		t.Fatal(err)
	}
	if proj == nil {
		t.Fatal("no projector returned")
	}
	if proj.Origin() != (geo.LatLon{Lat: 52.22, Lon: 6.89}) {
		t.Errorf("auto origin = %+v", proj.Origin())
	}
	if len(got) != 1 || got[0].ID != "walk" || got[0].Traj.Len() != 2 {
		t.Fatalf("decoded %+v", got)
	}
	// First point projects to the origin.
	if got[0].Traj[0].Pos().Norm() > 1e-6 {
		t.Errorf("first point not at origin: %v", got[0].Traj[0].Pos())
	}
	if got[0].Traj[0].T != 0 || got[0].Traj[1].T != 30 {
		t.Errorf("times = %v, %v", got[0].Traj[0].T, got[0].Traj[1].T)
	}
}

func TestGPXRejectsBadInput(t *testing.T) {
	cases := []string{
		`not xml at all`,
		`<gpx version="1.1"><trk><trkseg><trkpt lat="99" lon="0"><time>2000-01-01T00:00:00Z</time></trkpt></trkseg></trk></gpx>`,
		`<gpx version="1.1"><trk><trkseg><trkpt lat="1" lon="1"/></trkseg></trk></gpx>`, // no time
		`<gpx version="1.1"><trk><trkseg><trkpt lat="1" lon="1"><time>garbage</time></trkpt></trkseg></trk></gpx>`,
	}
	for i, in := range cases {
		if _, _, err := DecodeGPX(strings.NewReader(in), nil); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestGPXEncodeRequiresProjector(t *testing.T) {
	if err := EncodeGPX(&bytes.Buffer{}, nil, nil); err == nil {
		t.Error("nil projector accepted")
	}
}

func TestGPXUnnamedTracksNumbered(t *testing.T) {
	in := `<gpx version="1.1"><trk><trkseg>
	<trkpt lat="52.0" lon="6.0"><time>2000-01-01T00:00:00Z</time></trkpt>
	</trkseg></trk></gpx>`
	got, _, err := DecodeGPX(strings.NewReader(in), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].ID != "track-0" {
		t.Errorf("unnamed track id = %q", got[0].ID)
	}
}
