package codec

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/trajectory"
)

// csvHeader is the column layout of the CSV interchange format.
var csvHeader = []string{"id", "t", "x", "y"}

// EncodeCSV writes named trajectories as CSV with columns id,t,x,y
// (timestamps in seconds, coordinates in metres).
func EncodeCSV(w io.Writer, ts []Named) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	rec := make([]string, 4)
	for _, t := range ts {
		for _, s := range t.Traj {
			rec[0] = t.ID
			rec[1] = strconv.FormatFloat(s.T, 'f', -1, 64)
			rec[2] = strconv.FormatFloat(s.X, 'f', -1, 64)
			rec[3] = strconv.FormatFloat(s.Y, 'f', -1, 64)
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// DecodeCSV reads the CSV interchange format. Rows are grouped by id; within
// an id, rows must appear in strictly increasing time order. Trajectories
// are returned sorted by id.
func DecodeCSV(r io.Reader) ([]Named, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	head, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("%w: csv header: %v", ErrFormat, err)
	}
	for i, want := range csvHeader {
		if head[i] != want {
			return nil, fmt.Errorf("%w: csv header column %d is %q, want %q", ErrFormat, i, head[i], want)
		}
	}
	builders := map[string]*trajectory.Builder{}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%w: csv line %d: %v", ErrFormat, line, err)
		}
		t, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("%w: csv line %d: t: %v", ErrFormat, line, err)
		}
		x, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("%w: csv line %d: x: %v", ErrFormat, line, err)
		}
		y, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, fmt.Errorf("%w: csv line %d: y: %v", ErrFormat, line, err)
		}
		b := builders[rec[0]]
		if b == nil {
			b = trajectory.NewBuilder(0)
			builders[rec[0]] = b
		}
		if err := b.AppendPoint(t, x, y); err != nil {
			return nil, fmt.Errorf("%w: csv line %d: %v", ErrFormat, line, err)
		}
	}
	out := make([]Named, 0, len(builders))
	for id, b := range builders {
		out = append(out, Named{ID: id, Traj: b.Trajectory()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}
