package codec

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecodeFile checks that arbitrary bytes never panic the binary decoder
// and that whatever decodes successfully re-encodes cleanly.
func FuzzDecodeFile(f *testing.F) {
	// Seed with a valid encoding and a few mutations.
	var buf bytes.Buffer
	if err := EncodeFile(&buf, sampleTrajectories()); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("TRJC\x01"))
	f.Add(valid[:len(valid)/2])
	mutated := append([]byte(nil), valid...)
	mutated[10] ^= 0xff
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		named, err := DecodeFile(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Successful decodes must round-trip.
		var out bytes.Buffer
		if err := EncodeFile(&out, named); err != nil {
			t.Fatalf("re-encode of decoded data failed: %v", err)
		}
		again, err := DecodeFile(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(named) {
			t.Fatalf("round trip changed count: %d vs %d", len(again), len(named))
		}
	})
}

// FuzzDecodeCSV checks the CSV decoder against arbitrary text.
func FuzzDecodeCSV(f *testing.F) {
	var buf bytes.Buffer
	if err := EncodeCSV(&buf, sampleTrajectories()[:1]); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("")
	f.Add("id,t,x,y\n")
	f.Add("id,t,x,y\na,1,2,3\na,0,2,3\n")
	f.Add("id,t,x,y\na,NaN,2,3\n")

	f.Fuzz(func(t *testing.T, data string) {
		named, err := DecodeCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		for _, n := range named {
			if err := n.Traj.Validate(); err != nil {
				t.Fatalf("decoder returned invalid trajectory: %v", err)
			}
		}
	})
}
