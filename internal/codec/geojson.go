package codec

import (
	"encoding/json"
	"io"

	"repro/internal/geo"
)

// geoJSON document structure (only the subset needed for LineString export).
type geoJSONFeatureCollection struct {
	Type     string           `json:"type"`
	Features []geoJSONFeature `json:"features"`
}

type geoJSONFeature struct {
	Type       string          `json:"type"`
	Properties map[string]any  `json:"properties"`
	Geometry   geoJSONGeometry `json:"geometry"`
}

type geoJSONGeometry struct {
	Type        string       `json:"type"`
	Coordinates [][2]float64 `json:"coordinates"`
}

// EncodeGeoJSON writes named trajectories as a GeoJSON FeatureCollection of
// LineStrings for display on maps. If proj is non-nil, planar coordinates
// are converted back to WGS-84 lon/lat; otherwise raw planar metres are
// emitted. Timestamps are carried in a "times" property parallel to the
// coordinates.
func EncodeGeoJSON(w io.Writer, ts []Named, proj *geo.Projector) error {
	fc := geoJSONFeatureCollection{Type: "FeatureCollection"}
	for _, t := range ts {
		coords := make([][2]float64, t.Traj.Len())
		times := make([]float64, t.Traj.Len())
		for i, s := range t.Traj {
			if proj != nil {
				ll := proj.ToLatLon(s.Pos())
				coords[i] = [2]float64{ll.Lon, ll.Lat}
			} else {
				coords[i] = [2]float64{s.X, s.Y}
			}
			times[i] = s.T
		}
		fc.Features = append(fc.Features, geoJSONFeature{
			Type: "Feature",
			Properties: map[string]any{
				"id":    t.ID,
				"times": times,
			},
			Geometry: geoJSONGeometry{Type: "LineString", Coordinates: coords},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(fc)
}
