// Package store is an in-memory moving-object database substrate: the kind
// of system the paper targets ("database support for moving object
// representation and computing"). It ingests time-stamped positions per
// object, optionally compressing them on the fly with an online compressor
// from internal/stream, maintains a spatiotemporal grid index over the
// retained trajectory segments, and answers position-at-time and
// spatiotemporal range queries.
//
// The store demonstrates the paper's storage argument end to end: with an
// OPW-TR or OPW-SP compressor configured, the retained point count — and
// hence index size and snapshot size — drops by the compression rates of the
// paper's experiments while queries keep working within the configured
// error bound.
package store

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/geo"
	"repro/internal/metrics"
	"repro/internal/stream"
	"repro/internal/trajectory"
)

// IndexKind selects the spatiotemporal index backing Query.
type IndexKind int

const (
	// IndexGrid is a uniform spatial grid — fast inserts, best when data
	// density is roughly uniform and CellSize is well chosen.
	IndexGrid IndexKind = iota
	// IndexRTree is a 3D (x, y, t) R-tree — heavier inserts, robust to
	// skewed data and long time spans without tuning.
	IndexRTree
)

// Options configures a Store.
type Options struct {
	// NewCompressor returns a fresh online compressor for each object; nil
	// stores raw, uncompressed trajectories.
	NewCompressor func() stream.Compressor
	// Index selects the spatiotemporal index; the zero value is IndexGrid.
	Index IndexKind
	// CellSize is the spatial grid cell edge in metres for IndexGrid;
	// 0 selects 1000 m. Ignored by IndexRTree.
	CellSize float64
	// ErrorBound records the on-ingest compressor's synchronized max-error
	// guarantee in metres (e.g. the distance threshold of an OPW-TR or
	// OPW-SP compressor). It is informational: PositionBoundAt reports it
	// as the uncertainty radius, fulfilling the paper's objective of data
	// "with known, small margins of error". Zero means exact (no
	// compression or unknown bound).
	ErrorBound float64
	// Metrics selects the registry the store's instruments register in;
	// nil selects metrics.Default(). Instruments are shared by every store
	// on the same registry (process-wide totals, the usual monitoring
	// contract).
	Metrics *metrics.Registry
}

// instruments holds the store's registered metrics; see Options.Metrics.
type instruments struct {
	appends       *metrics.Counter
	appendErrors  *metrics.Counter
	objects       *metrics.Gauge
	retained      *metrics.Gauge
	indexSegments *metrics.Gauge
	evictions     *metrics.Counter
	evictedPts    *metrics.Counter
	querySeconds  map[string]*metrics.Histogram // by query kind
}

func newInstruments(r *metrics.Registry) *instruments {
	if r == nil {
		r = metrics.Default()
	}
	kinds := make(map[string]*metrics.Histogram, 4)
	for _, kind := range []string{"range", "tolerance", "nearest", "position"} {
		kinds[kind] = r.Histogram("store_query_seconds", nil, metrics.L("kind", kind))
	}
	return &instruments{
		appends:       r.Counter("store_appends_total"),
		appendErrors:  r.Counter("store_append_errors_total"),
		objects:       r.Gauge("store_objects"),
		retained:      r.Gauge("store_retained_samples"),
		indexSegments: r.Gauge("store_index_segments"),
		evictions:     r.Counter("store_evictions_total"),
		evictedPts:    r.Counter("store_evicted_samples_total"),
		querySeconds:  kinds,
	}
}

// Store is safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	opts    Options
	objects map[string]*object
	index   spatialIndex
	rawPts  int
	idxSegs int // segments currently in the index, mirrored to ins.indexSegments
	ins     *instruments
}

type object struct {
	comp     stream.Compressor
	retained trajectory.Trajectory
	lastRaw  trajectory.Sample
	rawSeen  int
}

// New returns an empty store.
func New(opts Options) *Store {
	if opts.CellSize <= 0 {
		opts.CellSize = 1000
	}
	var idx spatialIndex
	switch opts.Index {
	case IndexRTree:
		idx = newRTreeIndex()
	default:
		idx = newGridIndex(opts.CellSize)
	}
	if opts.NewCompressor != nil {
		// Wrap every per-object compressor so the live compression ratio
		// and window occupancy are observable (internal/stream instruments).
		inner := opts.NewCompressor
		streamIns := stream.NewInstruments(opts.Metrics)
		opts.NewCompressor = func() stream.Compressor {
			return stream.Instrument(inner(), streamIns)
		}
	}
	return &Store{
		opts:    opts,
		objects: make(map[string]*object),
		index:   idx,
		ins:     newInstruments(opts.Metrics),
	}
}

// Append ingests one observation for the given object. Observations must
// arrive in strictly increasing time order per object.
func (st *Store) Append(id string, s trajectory.Sample) error {
	_, err := st.AppendObserved(id, s)
	return err
}

// AppendObserved is Append, additionally returning the samples whose
// retention became definite through this observation (empty while an
// on-ingest compressor is buffering). Write-ahead logging uses this to
// persist exactly the retained stream.
func (st *Store) AppendObserved(id string, s trajectory.Sample) ([]trajectory.Sample, error) {
	if !s.IsFinite() {
		st.ins.appendErrors.Inc()
		return nil, fmt.Errorf("store: object %q: %w", id, trajectory.ErrNotFinite)
	}
	st.mu.Lock()
	defer st.mu.Unlock()

	obj := st.objects[id]
	if obj == nil {
		obj = &object{}
		if st.opts.NewCompressor != nil {
			obj.comp = st.opts.NewCompressor()
		}
		st.objects[id] = obj
		st.ins.objects.Inc()
	}
	if obj.rawSeen > 0 && s.T <= obj.lastRaw.T {
		st.ins.appendErrors.Inc()
		return nil, fmt.Errorf("store: object %q: %w: t=%v after t=%v", id, trajectory.ErrUnsorted, s.T, obj.lastRaw.T)
	}

	var retained []trajectory.Sample
	if obj.comp == nil {
		st.retain(id, obj, s)
		retained = []trajectory.Sample{s}
	} else {
		emitted, err := obj.comp.Push(s)
		if err != nil {
			st.ins.appendErrors.Inc()
			return nil, fmt.Errorf("store: object %q: %w", id, err)
		}
		for _, e := range emitted {
			st.retain(id, obj, e)
		}
		retained = emitted
	}
	obj.lastRaw = s
	obj.rawSeen++
	st.rawPts++
	st.ins.appends.Inc()
	return retained, nil
}

// Restore inserts a sample directly into an object's retained trajectory,
// bypassing any on-ingest compressor — the replay path of write-ahead
// logging, where the logged stream is already compressed. Samples must
// arrive in strictly increasing time order per object.
func (st *Store) Restore(id string, s trajectory.Sample) error {
	if !s.IsFinite() {
		return fmt.Errorf("store: object %q: %w", id, trajectory.ErrNotFinite)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	obj := st.objects[id]
	if obj == nil {
		obj = &object{}
		if st.opts.NewCompressor != nil {
			obj.comp = st.opts.NewCompressor()
		}
		st.objects[id] = obj
		st.ins.objects.Inc()
	}
	if obj.rawSeen > 0 && s.T <= obj.lastRaw.T {
		return fmt.Errorf("store: object %q: %w: t=%v after t=%v", id, trajectory.ErrUnsorted, s.T, obj.lastRaw.T)
	}
	st.retain(id, obj, s)
	obj.lastRaw = s
	obj.rawSeen++
	st.rawPts++
	st.ins.appends.Inc()
	return nil
}

// retain appends a finalized sample and indexes the new segment.
func (st *Store) retain(id string, obj *object, s trajectory.Sample) {
	if n := obj.retained.Len(); n > 0 {
		prev := obj.retained[n-1]
		st.index.insert(id, geo.Seg(prev.Pos(), s.Pos()).Bounds(), prev.T, s.T)
		st.idxSegs++
		st.ins.indexSegments.Inc()
	}
	obj.retained = append(obj.retained, s)
	st.ins.retained.Inc()
}

// Retained returns only the finalized (post-compression) samples of an
// object, without the buffered tail. This is the stream write-ahead logging
// persists. The boolean is false for unknown objects.
func (st *Store) Retained(id string) (trajectory.Trajectory, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	obj := st.objects[id]
	if obj == nil {
		return nil, false
	}
	return obj.retained.Clone(), true
}

// Snapshot returns the current queryable trajectory of an object: the
// retained samples plus, when on-ingest compression is buffering, the most
// recent raw observation (so the present position is always visible). The
// boolean is false for unknown objects.
func (st *Store) Snapshot(id string) (trajectory.Trajectory, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	obj := st.objects[id]
	if obj == nil {
		return nil, false
	}
	return st.snapshotLocked(obj), true
}

func (st *Store) snapshotLocked(obj *object) trajectory.Trajectory {
	out := obj.retained.Clone()
	if obj.rawSeen > 0 {
		if n := out.Len(); n == 0 || obj.lastRaw.T > out[n-1].T {
			out = append(out, obj.lastRaw)
		}
	}
	return out
}

// History returns the portion of an object's stored trajectory within
// [t0, t1], with interpolated boundary samples. The boolean is false for
// unknown objects.
func (st *Store) History(id string, t0, t1 float64) (trajectory.Trajectory, bool) {
	snap, ok := st.Snapshot(id)
	if !ok {
		return nil, false
	}
	return snap.TimeSlice(t0, t1), true
}

// PositionAt returns the interpolated position of the object at time t.
// The boolean is false for unknown objects or times outside the recorded
// span.
func (st *Store) PositionAt(id string, t float64) (geo.Point, bool) {
	defer st.ins.querySeconds["position"].ObserveSince(time.Now())
	snap, ok := st.Snapshot(id)
	if !ok {
		return geo.Point{}, false
	}
	return snap.LocAt(t)
}

// PositionBoundAt returns the interpolated position of the object at time t
// together with the uncertainty radius inherited from the on-ingest
// compressor's error bound (Options.ErrorBound): the object's true position
// at t was within radius metres of the returned point, for any t covered by
// finalized (retained) segments. Inside the compressor's still-buffered
// window the straight-line tail is not yet validated, so there the radius
// is a heuristic rather than a guarantee; bounding the window
// (stream.NewOPWTR's maxWindow) bounds that exposure. The boolean is false
// for unknown objects or times outside the recorded span.
func (st *Store) PositionBoundAt(id string, t float64) (pos geo.Point, radius float64, ok bool) {
	pos, ok = st.PositionAt(id, t)
	return pos, st.opts.ErrorBound, ok
}

// IDs returns the identifiers of all stored objects, sorted.
func (st *Store) IDs() []string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]string, 0, len(st.objects))
	for id := range st.objects {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Query returns the IDs of objects whose retained trajectory intersects the
// spatial rectangle during [t0, t1], sorted. The test is conservative at
// segment-bounding-box granularity: every truly intersecting object is
// returned; an object whose segment box (but not the segment itself)
// touches the rectangle may be included.
func (st *Store) Query(rect geo.Rect, t0, t1 float64) []string {
	defer st.ins.querySeconds["range"].ObserveSince(time.Now())
	return st.queryIDs(rect, t0, t1)
}

// queryIDs is the shared, untimed range-query body.
func (st *Store) queryIDs(rect geo.Rect, t0, t1 float64) []string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	hits := st.index.query(rect, t0, t1)
	// The buffered tail segment (last retained → last raw) is not indexed;
	// check it directly so freshly ingested movement is queryable.
	for id, obj := range st.objects {
		if hits[id] || obj.rawSeen == 0 {
			continue
		}
		if n := obj.retained.Len(); n > 0 && obj.lastRaw.T > obj.retained[n-1].T {
			prev := obj.retained[n-1]
			box := geo.Seg(prev.Pos(), obj.lastRaw.Pos()).Bounds()
			if box.Intersects(rect) && overlaps(prev.T, obj.lastRaw.T, t0, t1) {
				hits[id] = true
			}
		} else if n == 0 {
			if rect.Contains(obj.lastRaw.Pos()) && overlaps(obj.lastRaw.T, obj.lastRaw.T, t0, t1) {
				hits[id] = true
			}
		}
	}
	out := make([]string, 0, len(hits))
	for id := range hits {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// EvictBefore removes all retained samples older than t (exclusive) and
// rebuilds the spatiotemporal index — the data-aging countermeasure for the
// paper's "enormous volumes of data": a tracking service keeps a rolling
// window instead of unbounded history. Objects whose entire history
// (including their newest observation) predates t are removed outright.
// Samples still buffered inside an on-ingest compressor are untouched, so t
// should lag the newest data by more than the compressor's window span.
// It returns the number of retained samples removed.
func (st *Store) EvictBefore(t float64) int {
	st.mu.Lock()
	defer st.mu.Unlock()

	removed := 0
	dropped := 0
	for id, obj := range st.objects {
		n := obj.retained.Len()
		cut := 0
		for cut < n && obj.retained[cut].T < t {
			cut++
		}
		if cut > 0 {
			removed += cut
			obj.retained = append(trajectory.Trajectory(nil), obj.retained[cut:]...)
		}
		if obj.retained.Len() == 0 && obj.lastRaw.T < t {
			delete(st.objects, id)
			dropped++
		}
	}

	// Rebuild the index over the surviving segments.
	switch st.opts.Index {
	case IndexRTree:
		st.index = newRTreeIndex()
	default:
		st.index = newGridIndex(st.opts.CellSize)
	}
	segs := 0
	for id, obj := range st.objects {
		for i := 0; i+1 < obj.retained.Len(); i++ {
			a, b := obj.retained[i], obj.retained[i+1]
			st.index.insert(id, geo.Seg(a.Pos(), b.Pos()).Bounds(), a.T, b.T)
			segs++
		}
	}

	st.ins.evictions.Inc()
	st.ins.evictedPts.Add(int64(removed))
	st.ins.objects.Add(-float64(dropped))
	st.ins.retained.Add(-float64(removed))
	st.ins.indexSegments.Add(float64(segs - st.idxSegs))
	st.idxSegs = segs
	return removed
}

// QueryWithTolerance is Query with the rectangle expanded by the on-ingest
// compressor's error bound eps (metres). When every stored trajectory
// satisfies a synchronized max-error ≤ eps guarantee — as the OPW-TR and
// OPW-SP compressors ensure for their distance threshold — the expanded
// query returns every object whose ORIGINAL (uncompressed) movement
// intersected the rectangle during [t0, t1]: compression introduces no
// false negatives.
func (st *Store) QueryWithTolerance(rect geo.Rect, t0, t1, eps float64) []string {
	defer st.ins.querySeconds["tolerance"].ObserveSince(time.Now())
	if eps < 0 {
		eps = 0
	}
	return st.queryIDs(rect.Expand(eps), t0, t1)
}

// Neighbor is one nearest-neighbour result.
type Neighbor struct {
	ID   string
	Pos  geo.Point
	Dist float64
}

// Nearest returns the k objects closest to q at time t (objects without a
// position at t are skipped), ordered by increasing distance. Fewer than k
// results are returned when fewer objects are live at t.
func (st *Store) Nearest(q geo.Point, t float64, k int) []Neighbor {
	defer st.ins.querySeconds["nearest"].ObserveSince(time.Now())
	if k <= 0 {
		return nil
	}
	st.mu.RLock()
	var all []Neighbor
	for id, obj := range st.objects {
		snap := st.snapshotLocked(obj)
		pos, ok := snap.LocAt(t)
		if !ok {
			continue
		}
		all = append(all, Neighbor{ID: id, Pos: pos, Dist: pos.Dist(q)})
	}
	st.mu.RUnlock()

	sort.Slice(all, func(i, j int) bool {
		//lint:allow floatcmp deterministic sort tie-break on identical distances
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].ID < all[j].ID
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// Stats summarizes storage effectiveness.
type Stats struct {
	Objects        int
	RawPoints      int     // observations ingested
	RetainedPoints int     // points kept after on-ingest compression
	CompressionPct float64 // % of ingested points discarded
	// PointsPerObject maps each object ID to its retained point count,
	// captured in the same locked pass as the totals so the breakdown always
	// sums to RetainedPoints.
	PointsPerObject map[string]int
}

// Stats returns current storage statistics from one consistent snapshot.
func (st *Store) Stats() Stats {
	st.mu.RLock()
	defer st.mu.RUnlock()
	s := Stats{
		Objects:         len(st.objects),
		RawPoints:       st.rawPts,
		PointsPerObject: make(map[string]int, len(st.objects)),
	}
	for id, obj := range st.objects {
		n := obj.retained.Len()
		s.RetainedPoints += n
		s.PointsPerObject[id] = n
	}
	if st.rawPts > 0 {
		s.CompressionPct = 100 * float64(st.rawPts-s.RetainedPoints) / float64(st.rawPts)
	}
	return s
}

// Save writes a snapshot of every object (retained samples plus buffered
// tail) in the binary codec format.
func (st *Store) Save(w interface{ Write([]byte) (int, error) }) error {
	st.mu.RLock()
	named := make([]codec.Named, 0, len(st.objects))
	ids := make([]string, 0, len(st.objects))
	for id := range st.objects {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		named = append(named, codec.Named{ID: id, Traj: st.snapshotLocked(st.objects[id])})
	}
	st.mu.RUnlock()
	return codec.EncodeFile(w, named)
}

// Load ingests a snapshot written by Save into an empty store. Each loaded
// sample passes through the store's usual ingest path (including on-ingest
// compression if configured).
func (st *Store) Load(r interface{ Read([]byte) (int, error) }) error {
	named, err := codec.DecodeFile(r)
	if err != nil {
		return err
	}
	for _, n := range named {
		for _, s := range n.Traj {
			if err := st.Append(n.ID, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func overlaps(a0, a1, b0, b1 float64) bool { return a0 <= b1 && b0 <= a1 }
