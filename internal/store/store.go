// Package store is an in-memory moving-object database substrate: the kind
// of system the paper targets ("database support for moving object
// representation and computing"). It ingests time-stamped positions per
// object, optionally compressing them on the fly with an online compressor
// from internal/stream, maintains a spatiotemporal grid index over the
// retained trajectory segments, and answers position-at-time and
// spatiotemporal range queries.
//
// The store demonstrates the paper's storage argument end to end: with an
// OPW-TR or OPW-SP compressor configured, the retained point count — and
// hence index size and snapshot size — drops by the compression rates of the
// paper's experiments while queries keep working within the configured
// error bound.
//
// # Sharding and consistency
//
// The store is partitioned into a power-of-two number of shards
// (Options.Shards) by the FNV-1a hash of the object ID. Each shard owns its
// objects, their retained trajectories, and its segment of the
// spatiotemporal index, under its own lock — so appends to objects on
// different shards never contend, and eviction sweeps one shard at a time
// instead of stalling every writer.
//
// Per-object operations (Append, Snapshot, PositionAt, History, Retained)
// are atomic: they touch exactly one shard. Cross-object operations (Query,
// QueryWithTolerance, Nearest, IDs, Stats, EvictBefore, Save) visit the
// shards in a fixed order, locking one at a time; each shard's contribution
// is internally consistent, but there is no global snapshot lock, so an
// append racing such an operation may be reflected on some shards and not
// others. For a quiescent store (no concurrent writers) every result is
// exact, and results never mix two states of the same object.
package store

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/codec"
	"repro/internal/geo"
	"repro/internal/metrics"
	"repro/internal/seal"
	"repro/internal/stream"
	"repro/internal/trajectory"
)

// IndexKind selects the spatiotemporal index backing Query.
type IndexKind int

const (
	// IndexGrid is a uniform spatial grid — fast inserts, best when data
	// density is roughly uniform and CellSize is well chosen.
	IndexGrid IndexKind = iota
	// IndexRTree is a 3D (x, y, t) R-tree — heavier inserts, robust to
	// skewed data and long time spans without tuning.
	IndexRTree
)

// Options configures a Store.
type Options struct {
	// NewCompressor returns a fresh online compressor for each object; nil
	// stores raw, uncompressed trajectories.
	NewCompressor func() stream.Compressor
	// Index selects the spatiotemporal index; the zero value is IndexGrid.
	Index IndexKind
	// CellSize is the spatial grid cell edge in metres for IndexGrid;
	// 0 selects 1000 m. Ignored by IndexRTree.
	CellSize float64
	// Shards selects the number of independent store shards. Values ≤ 0
	// select the default max(8, 2×GOMAXPROCS); any other value is rounded
	// up to the next power of two. One shard reproduces the old
	// single-lock store. See the package comment for the consistency
	// model.
	Shards int
	// ErrorBound records the on-ingest compressor's synchronized max-error
	// guarantee in metres (e.g. the distance threshold of an OPW-TR or
	// OPW-SP compressor). It is informational: PositionBoundAt reports it
	// as the uncertainty radius, fulfilling the paper's objective of data
	// "with known, small margins of error". Zero means exact (no
	// compression or unknown bound).
	ErrorBound float64
	// Metrics selects the registry the store's instruments register in;
	// nil selects metrics.Default(). Instruments are shared by every store
	// on the same registry (process-wide totals, the usual monitoring
	// contract).
	Metrics *metrics.Registry
	// SealEps enables the cold sealed tier (internal/seal) with the given
	// spatial quantization error bound in metres: EvictBefore and SealBefore
	// move aged retained points into quantized sealed blocks instead of
	// dropping them, and range/kNN queries answer over both tiers. 0 (the
	// default) disables sealing, preserving the drop-on-evict behaviour.
	SealEps float64
	// SealBlockPoints caps the samples per sealed block; 0 selects
	// seal.DefaultBlockPoints. Ignored unless SealEps > 0.
	SealBlockPoints int
}

// instruments holds the store's registered metrics; see Options.Metrics.
// All counters and gauges are updated with per-shard deltas, so the totals
// stay additive regardless of the shard count.
type instruments struct {
	appends       *metrics.Counter
	appendErrors  *metrics.Counter
	objects       *metrics.Gauge
	retained      *metrics.Gauge
	indexSegments *metrics.Gauge
	evictions     *metrics.Counter
	evictedPts    *metrics.Counter
	shards        *metrics.Gauge
	querySeconds  map[string]*metrics.Histogram // by query kind
}

func newInstruments(r *metrics.Registry) *instruments {
	if r == nil {
		r = metrics.Default()
	}
	kinds := make(map[string]*metrics.Histogram, 5)
	for _, kind := range []string{"range", "tolerance", "nearest", "position", "points"} {
		kinds[kind] = r.Histogram("store_query_seconds", nil, metrics.L("kind", kind))
	}
	return &instruments{
		appends:       r.Counter("store_appends_total"),
		appendErrors:  r.Counter("store_append_errors_total"),
		objects:       r.Gauge("store_objects"),
		retained:      r.Gauge("store_retained_samples"),
		indexSegments: r.Gauge("store_index_segments"),
		evictions:     r.Counter("store_evictions_total"),
		evictedPts:    r.Counter("store_evicted_samples_total"),
		shards:        r.Gauge("store_shards"),
		querySeconds:  kinds,
	}
}

// Store is safe for concurrent use. See the package comment for the
// sharding and consistency model.
type Store struct {
	opts   Options
	shards []*shard
	mask   uint32
	ins    *instruments
	// cold is the sealed quantized tier; nil unless Options.SealEps > 0.
	// The tier has its own lock and is never called with a shard lock held
	// except by the sealing sweep (shard → tier, a one-way edge).
	cold *seal.Tier
}

type object struct {
	comp     stream.Compressor
	retained trajectory.Trajectory
	lastRaw  trajectory.Sample
	rawSeen  int
}

// New returns an empty store.
func New(opts Options) *Store {
	if opts.CellSize <= 0 {
		opts.CellSize = 1000
	}
	if opts.NewCompressor != nil {
		// Wrap every per-object compressor so the live compression ratio
		// and window occupancy are observable (internal/stream instruments).
		inner := opts.NewCompressor
		streamIns := stream.NewInstruments(opts.Metrics)
		opts.NewCompressor = func() stream.Compressor {
			return stream.Instrument(inner(), streamIns)
		}
	}
	n := normalizeShards(opts.Shards)
	shards := make([]*shard, n)
	for i := range shards {
		shards[i] = &shard{
			objects: make(map[string]*object),
			index:   newIndex(opts),
		}
	}
	st := &Store{
		opts:   opts,
		shards: shards,
		mask:   uint32(n - 1),
		ins:    newInstruments(opts.Metrics),
	}
	if opts.SealEps > 0 {
		st.cold = seal.NewTier(seal.Config{
			Eps:         opts.SealEps,
			BlockPoints: opts.SealBlockPoints,
			Metrics:     opts.Metrics,
		})
	}
	st.ins.shards.Set(float64(n))
	return st
}

// NumShards returns the number of shards the store actually uses (the
// normalized power of two; see Options.Shards).
func (st *Store) NumShards() int { return len(st.shards) }

// Append ingests one observation for the given object. Observations must
// arrive in strictly increasing time order per object.
func (st *Store) Append(id string, s trajectory.Sample) error {
	_, err := st.AppendObserved(id, s)
	return err
}

// AppendObserved is Append, additionally returning the samples whose
// retention became definite through this observation (empty while an
// on-ingest compressor is buffering). Write-ahead logging uses this to
// persist exactly the retained stream.
func (st *Store) AppendObserved(id string, s trajectory.Sample) ([]trajectory.Sample, error) {
	sh := st.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return st.appendLocked(sh, id, s)
}

// AppendBatch ingests a batch of observations for one object, taking the
// object's shard lock once instead of once per sample — the store half of
// the MAPPEND fast path. Samples must be strictly increasing in time and
// follow any earlier observation. On error the first `applied` samples were
// ingested and the rest were not: an intact prefix, never a gap.
func (st *Store) AppendBatch(id string, ss []trajectory.Sample) (int, error) {
	applied, _, err := st.AppendBatchObserved(id, ss)
	return applied, err
}

// AppendBatchObserved is AppendBatch, additionally returning the samples
// whose retention became definite, in emission order — the write-ahead
// logging hook, exactly as in AppendObserved.
func (st *Store) AppendBatchObserved(id string, ss []trajectory.Sample) (int, []trajectory.Sample, error) {
	if len(ss) == 0 {
		return 0, nil, nil
	}
	sh := st.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var retained []trajectory.Sample
	for k, s := range ss {
		emitted, err := st.appendLocked(sh, id, s)
		if err != nil {
			return k, retained, err
		}
		retained = append(retained, emitted...)
	}
	return len(ss), retained, nil
}

// appendLocked is the single-observation ingest body; the shard lock must
// be held. Validation happens before any state change, so a rejected sample
// leaves the object exactly as it was.
func (st *Store) appendLocked(sh *shard, id string, s trajectory.Sample) ([]trajectory.Sample, error) {
	if !s.IsFinite() {
		st.ins.appendErrors.Inc()
		return nil, fmt.Errorf("store: object %q: %w", id, trajectory.ErrNotFinite)
	}
	obj := sh.objects[id]
	if obj == nil {
		obj = &object{}
		if st.opts.NewCompressor != nil {
			obj.comp = st.opts.NewCompressor()
		}
		sh.objects[id] = obj
		st.ins.objects.Inc()
	}
	if obj.rawSeen > 0 && s.T <= obj.lastRaw.T {
		st.ins.appendErrors.Inc()
		return nil, fmt.Errorf("store: object %q: %w: t=%v after t=%v", id, trajectory.ErrUnsorted, s.T, obj.lastRaw.T)
	}

	var retained []trajectory.Sample
	if obj.comp == nil {
		st.retain(sh, id, obj, s)
		retained = []trajectory.Sample{s}
	} else {
		emitted, err := obj.comp.Push(s)
		if err != nil {
			st.ins.appendErrors.Inc()
			return nil, fmt.Errorf("store: object %q: %w", id, err)
		}
		for _, e := range emitted {
			st.retain(sh, id, obj, e)
		}
		retained = emitted
	}
	obj.lastRaw = s
	obj.rawSeen++
	sh.rawPts++
	st.ins.appends.Inc()
	return retained, nil
}

// Restore inserts a sample directly into an object's retained trajectory,
// bypassing any on-ingest compressor — the replay path of write-ahead
// logging, where the logged stream is already compressed. Samples must
// arrive in strictly increasing time order per object.
func (st *Store) Restore(id string, s trajectory.Sample) error {
	if !s.IsFinite() {
		return fmt.Errorf("store: object %q: %w", id, trajectory.ErrNotFinite)
	}
	sh := st.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	obj := sh.objects[id]
	if obj == nil {
		obj = &object{}
		if st.opts.NewCompressor != nil {
			obj.comp = st.opts.NewCompressor()
		}
		sh.objects[id] = obj
		st.ins.objects.Inc()
	}
	if obj.rawSeen > 0 && s.T <= obj.lastRaw.T {
		return fmt.Errorf("store: object %q: %w: t=%v after t=%v", id, trajectory.ErrUnsorted, s.T, obj.lastRaw.T)
	}
	st.retain(sh, id, obj, s)
	obj.lastRaw = s
	obj.rawSeen++
	sh.rawPts++
	st.ins.appends.Inc()
	return nil
}

// retain appends a finalized sample and indexes the new segment in the
// object's shard. The shard's lock must be held.
func (st *Store) retain(sh *shard, id string, obj *object, s trajectory.Sample) {
	if n := obj.retained.Len(); n > 0 {
		prev := obj.retained[n-1]
		sh.index.insert(id, geo.Seg(prev.Pos(), s.Pos()).Bounds(), prev.T, s.T)
		sh.idxSegs++
		st.ins.indexSegments.Inc()
	}
	obj.retained = append(obj.retained, s)
	st.ins.retained.Inc()
}

// Retained returns only the finalized (post-compression) samples of an
// object, without the buffered tail. This is the stream write-ahead logging
// persists. The boolean is false for unknown objects.
func (st *Store) Retained(id string) (trajectory.Trajectory, bool) {
	sh := st.shardOf(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	obj := sh.objects[id]
	if obj == nil {
		return nil, false
	}
	return obj.retained.Clone(), true
}

// Snapshot returns the current queryable trajectory of an object: the
// retained samples plus, when on-ingest compression is buffering, the most
// recent raw observation (so the present position is always visible). The
// boolean is false for unknown objects.
func (st *Store) Snapshot(id string) (trajectory.Trajectory, bool) {
	sh := st.shardOf(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	obj := sh.objects[id]
	if obj == nil {
		return nil, false
	}
	return obj.snapshot(), true
}

// snapshot builds the queryable trajectory of the object; the owning
// shard's lock must be held.
func (obj *object) snapshot() trajectory.Trajectory {
	out := obj.retained.Clone()
	if obj.rawSeen > 0 {
		if n := out.Len(); n == 0 || obj.lastRaw.T > out[n-1].T {
			out = append(out, obj.lastRaw)
		}
	}
	return out
}

// History returns the portion of an object's stored trajectory within
// [t0, t1], with interpolated boundary samples. The boolean is false for
// unknown objects.
func (st *Store) History(id string, t0, t1 float64) (trajectory.Trajectory, bool) {
	snap, ok := st.Snapshot(id)
	if !ok {
		return nil, false
	}
	return snap.TimeSlice(t0, t1), true
}

// PositionAt returns the interpolated position of the object at time t.
// The boolean is false for unknown objects or times outside the recorded
// span.
func (st *Store) PositionAt(id string, t float64) (geo.Point, bool) {
	defer st.ins.querySeconds["position"].ObserveSince(time.Now())
	snap, ok := st.Snapshot(id)
	if !ok {
		return geo.Point{}, false
	}
	return snap.LocAt(t)
}

// PositionBoundAt returns the interpolated position of the object at time t
// together with the uncertainty radius inherited from the on-ingest
// compressor's error bound (Options.ErrorBound): the object's true position
// at t was within radius metres of the returned point, for any t covered by
// finalized (retained) segments. Inside the compressor's still-buffered
// window the straight-line tail is not yet validated, so there the radius
// is a heuristic rather than a guarantee; bounding the window
// (stream.NewOPWTR's maxWindow) bounds that exposure. The boolean is false
// for unknown objects or times outside the recorded span.
func (st *Store) PositionBoundAt(id string, t float64) (pos geo.Point, radius float64, ok bool) {
	pos, ok = st.PositionAt(id, t)
	return pos, st.opts.ErrorBound, ok
}

// IDs returns the identifiers of all stored objects, sorted. Shards are
// visited in order; see the package comment for the consistency model.
func (st *Store) IDs() []string {
	var out []string
	for _, sh := range st.shards {
		sh.mu.RLock()
		for id := range sh.objects {
			out = append(out, id)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// Query returns the IDs of objects whose trajectory intersects the spatial
// rectangle during [t0, t1], sorted — the union of the hot retained tier
// and, when sealing is enabled, the cold sealed tier. The test is
// conservative at segment-bounding-box granularity: every truly
// intersecting object is returned; an object whose segment box (but not the
// segment itself) touches the rectangle may be included. Sealed history is
// evaluated over quantized blocks with each block's recorded error bound
// expanding the rectangle, so sealing introduces no false negatives.
func (st *Store) Query(rect geo.Rect, t0, t1 float64) []string {
	defer st.ins.querySeconds["range"].ObserveSince(time.Now())
	out := st.queryIDs(rect, t0, t1)
	if st.cold != nil {
		out = mergeIDs(out, st.cold.QueryIDs(rect, t0, t1))
	}
	return out
}

// queryIDs is the shared, untimed range-query body: an ordered sweep over
// the shards, merging each shard's index hits and buffered-tail checks.
func (st *Store) queryIDs(rect geo.Rect, t0, t1 float64) []string {
	var out []string
	for _, sh := range st.shards {
		sh.mu.RLock()
		hits := sh.index.query(rect, t0, t1)
		// The buffered tail segment (last retained → last raw) is not
		// indexed; check it directly so freshly ingested movement is
		// queryable.
		for id, obj := range sh.objects {
			if hits[id] || obj.rawSeen == 0 {
				continue
			}
			if n := obj.retained.Len(); n > 0 && obj.lastRaw.T > obj.retained[n-1].T {
				prev := obj.retained[n-1]
				box := geo.Seg(prev.Pos(), obj.lastRaw.Pos()).Bounds()
				if box.Intersects(rect) && overlaps(prev.T, obj.lastRaw.T, t0, t1) {
					hits[id] = true
				}
			} else if n == 0 {
				if rect.Contains(obj.lastRaw.Pos()) && overlaps(obj.lastRaw.T, obj.lastRaw.T, t0, t1) {
					hits[id] = true
				}
			}
		}
		sh.mu.RUnlock()
		for id := range hits {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// EvictBefore removes all retained samples older than t (exclusive) from
// the hot tier and rebuilds the spatiotemporal index — the data-aging
// countermeasure for the paper's "enormous volumes of data": a tracking
// service keeps a rolling hot window instead of unbounded history. With
// sealing enabled (Options.SealEps) the aged samples are not lost: they are
// sealed into the cold quantized tier (seal-on-evict) and remain queryable
// through Query/Nearest/RangePoints. Without sealing they are dropped, the
// original behaviour. Objects whose entire history (including their newest
// observation) predates t are removed from the hot tier outright. Samples
// still buffered inside an on-ingest compressor are untouched, so t should
// lag the newest data by more than the compressor's window span.
//
// The sweep proceeds shard by shard, holding only one shard's lock at a
// time: appends to other shards are never stalled behind an index rebuild.
// It returns the number of retained samples removed from the hot tier.
func (st *Store) EvictBefore(t float64) int {
	removed, _ := st.ageBefore(t, st.cold != nil)
	return removed
}

// ageBefore sweeps every shard, sealing (when sealing is set) or dropping
// retained samples older than t. The first seal-encoding error is returned;
// an object whose run fails to seal keeps its samples hot rather than
// losing them.
func (st *Store) ageBefore(t float64, sealing bool) (int, error) {
	removed := 0
	var firstErr error
	for _, sh := range st.shards {
		n, err := st.ageShard(sh, t, sealing)
		removed += n
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	st.ins.evictions.Inc()
	st.ins.evictedPts.Add(int64(removed))
	return removed, firstErr
}

// ageShard ages out one shard and rebuilds its index segment. With sealing
// set, each object's aged run — including the first surviving sample as an
// overlap head, so the hot/cold boundary stays interpolable — is sealed
// into the cold tier before it leaves the hot tier. The shard → tier lock
// edge is one-way: the tier never calls back into the store.
func (st *Store) ageShard(sh *shard, t float64, sealing bool) (int, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()

	removed := 0
	dropped := 0
	var firstErr error
	for id, obj := range sh.objects {
		n := obj.retained.Len()
		cut := 0
		for cut < n && obj.retained[cut].T < t {
			cut++
		}
		if cut > 0 {
			if sealing {
				run := obj.retained[:cut]
				if cut < n {
					run = obj.retained[:cut+1] // overlap head: sealed once, kept hot
				}
				if err := st.cold.Seal(id, run); err != nil {
					if firstErr == nil {
						firstErr = err
					}
					continue // unsealable: keep the samples hot, never lose them
				}
			}
			removed += cut
			obj.retained = append(trajectory.Trajectory(nil), obj.retained[cut:]...)
		}
		if obj.retained.Len() == 0 && obj.lastRaw.T < t {
			delete(sh.objects, id)
			dropped++
		}
	}

	// Rebuild this shard's index over its surviving segments.
	sh.index = newIndex(st.opts)
	segs := 0
	for id, obj := range sh.objects {
		for i := 0; i+1 < obj.retained.Len(); i++ {
			a, b := obj.retained[i], obj.retained[i+1]
			sh.index.insert(id, geo.Seg(a.Pos(), b.Pos()).Bounds(), a.T, b.T)
			segs++
		}
	}

	st.ins.objects.Add(-float64(dropped))
	st.ins.retained.Add(-float64(removed))
	st.ins.indexSegments.Add(float64(segs - sh.idxSegs))
	sh.idxSegs = segs
	return removed, firstErr
}

// QueryWithTolerance is Query with the rectangle expanded by the on-ingest
// compressor's error bound eps (metres). When every stored trajectory
// satisfies a synchronized max-error ≤ eps guarantee — as the OPW-TR and
// OPW-SP compressors ensure for their distance threshold — the expanded
// query returns every object whose ORIGINAL (uncompressed) movement
// intersected the rectangle during [t0, t1]: compression introduces no
// false negatives.
func (st *Store) QueryWithTolerance(rect geo.Rect, t0, t1, eps float64) []string {
	defer st.ins.querySeconds["tolerance"].ObserveSince(time.Now())
	if eps < 0 {
		eps = 0
	}
	out := st.queryIDs(rect.Expand(eps), t0, t1)
	if st.cold != nil {
		out = mergeIDs(out, st.cold.QueryIDs(rect.Expand(eps), t0, t1))
	}
	return out
}

// Neighbor is one nearest-neighbour result.
type Neighbor struct {
	ID   string
	Pos  geo.Point
	Dist float64
}

// Nearest returns the k objects closest to q at time t (objects without a
// position at t are skipped), ordered by increasing distance. Fewer than k
// results are returned when fewer objects are live at t. When sealing is
// enabled, objects whose position at t lives only in the cold tier are
// answered from their sealed blocks, within the tier's error bound; the hot
// tier wins for objects present in both. Shards are visited in order; see
// the package comment for the consistency model.
func (st *Store) Nearest(q geo.Point, t float64, k int) []Neighbor {
	defer st.ins.querySeconds["nearest"].ObserveSince(time.Now())
	if k <= 0 {
		return nil
	}
	var all []Neighbor
	hot := make(map[string]bool)
	for _, sh := range st.shards {
		sh.mu.RLock()
		for id, obj := range sh.objects {
			snap := obj.snapshot()
			pos, ok := snap.LocAt(t)
			if !ok {
				continue
			}
			hot[id] = true
			all = append(all, Neighbor{ID: id, Pos: pos, Dist: pos.Dist(q)})
		}
		sh.mu.RUnlock()
	}
	if st.cold != nil {
		st.cold.PositionsAt(t, func(id string) bool { return hot[id] }, func(id string, pos geo.Point) {
			all = append(all, Neighbor{ID: id, Pos: pos, Dist: pos.Dist(q)})
		})
	}

	sort.Slice(all, func(i, j int) bool {
		//lint:allow floatcmp deterministic sort tie-break on identical distances
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].ID < all[j].ID
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// Stats summarizes storage effectiveness.
type Stats struct {
	Objects        int
	RawPoints      int     // observations ingested
	RetainedPoints int     // points kept after on-ingest compression
	CompressionPct float64 // % of ingested points discarded
	// PointsPerObject maps each object ID to its retained point count,
	// captured in the same locked pass as that object's shard totals, so
	// the breakdown always sums to RetainedPoints.
	PointsPerObject map[string]int
	// Cold sealed tier totals; all zero when sealing is disabled.
	SealedBlocks int
	SealedPoints int
	SealedBytes  int64
}

// Stats returns current storage statistics. Each shard contributes one
// internally consistent snapshot; shards are visited in order without a
// global lock (see the package comment), so under concurrent appends the
// totals may straddle shard states while still summing consistently per
// shard.
func (st *Store) Stats() Stats {
	s := Stats{PointsPerObject: make(map[string]int)}
	for _, sh := range st.shards {
		sh.mu.RLock()
		s.Objects += len(sh.objects)
		s.RawPoints += sh.rawPts
		for id, obj := range sh.objects {
			n := obj.retained.Len()
			s.RetainedPoints += n
			s.PointsPerObject[id] = n
		}
		sh.mu.RUnlock()
	}
	if s.RawPoints > 0 {
		s.CompressionPct = 100 * float64(s.RawPoints-s.RetainedPoints) / float64(s.RawPoints)
	}
	if st.cold != nil {
		s.SealedBlocks = st.cold.Blocks()
		s.SealedPoints = st.cold.Points()
		s.SealedBytes = st.cold.CompressedBytes()
	}
	return s
}

// Save writes a snapshot of every object (retained samples plus buffered
// tail) in the binary codec format. Each shard is captured consistently in
// one locked pass; the shards are captured in order (no global lock).
func (st *Store) Save(w interface{ Write([]byte) (int, error) }) error {
	var named []codec.Named
	for _, sh := range st.shards {
		sh.mu.RLock()
		for id, obj := range sh.objects {
			named = append(named, codec.Named{ID: id, Traj: obj.snapshot()})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(named, func(i, j int) bool { return named[i].ID < named[j].ID })
	return codec.EncodeFile(w, named)
}

// Load ingests a snapshot written by Save into an empty store. Each loaded
// sample passes through the store's usual ingest path (including on-ingest
// compression if configured).
func (st *Store) Load(r interface{ Read([]byte) (int, error) }) error {
	named, err := codec.DecodeFile(r)
	if err != nil {
		return err
	}
	for _, n := range named {
		for _, s := range n.Traj {
			if err := st.Append(n.ID, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func overlaps(a0, a1, b0, b1 float64) bool { return a0 <= b1 && b0 <= a1 }
