package store

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/geo"
	"repro/internal/gpsgen"
	"repro/internal/metrics"
	"repro/internal/sed"
	"repro/internal/stream"
	"repro/internal/trajectory"
)

func feed(t *testing.T, st *Store, id string, p trajectory.Trajectory) {
	t.Helper()
	for _, s := range p {
		if err := st.Append(id, s); err != nil {
			t.Fatalf("append %q: %v", id, err)
		}
	}
}

func TestAppendAndSnapshotRaw(t *testing.T) {
	st := New(Options{})
	g := gpsgen.New(1, gpsgen.Config{})
	p := g.Trip(gpsgen.Urban, 600)
	feed(t, st, "car", p)

	snap, ok := st.Snapshot("car")
	if !ok {
		t.Fatal("object missing")
	}
	if snap.Len() != p.Len() {
		t.Errorf("raw store kept %d of %d points", snap.Len(), p.Len())
	}
	if _, ok := st.Snapshot("ghost"); ok {
		t.Error("unknown object answered")
	}
}

func TestAppendValidation(t *testing.T) {
	st := New(Options{})
	if err := st.Append("a", trajectory.S(1, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := st.Append("a", trajectory.S(1, 1, 1)); !errors.Is(err, trajectory.ErrUnsorted) {
		t.Errorf("duplicate time: %v", err)
	}
	if err := st.Append("a", trajectory.S(2, math.NaN(), 0)); !errors.Is(err, trajectory.ErrNotFinite) {
		t.Errorf("NaN: %v", err)
	}
	// Other objects are unaffected.
	if err := st.Append("b", trajectory.S(0.5, 0, 0)); err != nil {
		t.Errorf("independent object rejected: %v", err)
	}
}

func TestOnIngestCompression(t *testing.T) {
	const eps = 50.0
	st := New(Options{
		NewCompressor: func() stream.Compressor { return stream.NewOPWTR(eps, 0) },
	})
	g := gpsgen.New(2, gpsgen.Config{})
	p := g.Trip(gpsgen.Urban, 1800)
	feed(t, st, "car", p)

	stats := st.Stats()
	if stats.RawPoints != p.Len() {
		t.Errorf("raw points %d, want %d", stats.RawPoints, p.Len())
	}
	if stats.CompressionPct < 20 {
		t.Errorf("compression only %.1f%%, expected substantial reduction", stats.CompressionPct)
	}

	// The stored trajectory stays within the OPW-TR error bound over the
	// finalized portion.
	snap, _ := st.Snapshot("car")
	if err := snap.Validate(); err != nil {
		t.Fatalf("snapshot invalid: %v", err)
	}
	if !snap.IsVertexSubsetOf(p) {
		t.Fatal("snapshot not a subsequence of the input")
	}
	worst, err := sed.MaxError(p, snap)
	if err != nil {
		t.Fatal(err)
	}
	if worst > eps+1e-9 {
		t.Errorf("stored trajectory max sync error %.2f exceeds %.0f", worst, eps)
	}
}

func TestSnapshotIncludesLatestPosition(t *testing.T) {
	st := New(Options{
		NewCompressor: func() stream.Compressor { return stream.NewOPWTR(1e9, 0) },
	})
	// With a huge threshold, the compressor buffers everything after the
	// first point — but the snapshot must still expose the newest fix.
	for i := 0; i < 10; i++ {
		if err := st.Append("car", trajectory.S(float64(i), float64(i*10), 0)); err != nil {
			t.Fatal(err)
		}
	}
	snap, _ := st.Snapshot("car")
	if snap[snap.Len()-1].T != 9 {
		t.Errorf("snapshot tail t=%v, want 9", snap[snap.Len()-1].T)
	}
	if pos, ok := st.PositionAt("car", 9); !ok || !pos.AlmostEqual(geo.Pt(90, 0), 1e-9) {
		t.Errorf("PositionAt(9) = %v, %v", pos, ok)
	}
}

func TestPositionAt(t *testing.T) {
	st := New(Options{})
	feed(t, st, "car", trajectory.MustNew([]trajectory.Sample{
		trajectory.S(0, 0, 0), trajectory.S(10, 100, 0),
	}))
	if pos, ok := st.PositionAt("car", 5); !ok || !pos.AlmostEqual(geo.Pt(50, 0), 1e-9) {
		t.Errorf("PositionAt(5) = %v, %v", pos, ok)
	}
	if _, ok := st.PositionAt("car", 11); ok {
		t.Error("time beyond span answered")
	}
	if _, ok := st.PositionAt("ghost", 5); ok {
		t.Error("unknown object answered")
	}
}

func TestHistory(t *testing.T) {
	st := New(Options{})
	feed(t, st, "car", trajectory.MustNew([]trajectory.Sample{
		trajectory.S(0, 0, 0), trajectory.S(10, 100, 0), trajectory.S(20, 200, 0),
	}))
	h, ok := st.History("car", 5, 15)
	if !ok {
		t.Fatal("object missing")
	}
	if h.Len() != 3 || h[0].T != 5 || h[2].T != 15 {
		t.Errorf("History = %v", h)
	}
	if _, ok := st.History("ghost", 0, 1); ok {
		t.Error("unknown object answered")
	}
	if h, _ := st.History("car", 100, 200); h.Len() != 0 {
		t.Errorf("disjoint window returned %v", h)
	}
}

// PositionBoundAt delivers the paper's "known margins of error": the true
// (raw) position always lies within the reported radius of the answer.
func TestPositionBoundAt(t *testing.T) {
	const eps = 40.0
	st := New(Options{
		NewCompressor: func() stream.Compressor { return stream.NewOPWTR(eps, 0) },
		ErrorBound:    eps,
	})
	g := gpsgen.New(7, gpsgen.Config{})
	p := g.Trip(gpsgen.Urban, 1200)
	feed(t, st, "car", p)

	for _, tt := range []float64{100, 300, 500, 700, 900} {
		pos, radius, ok := st.PositionBoundAt("car", tt)
		if !ok {
			t.Fatalf("no position at t=%v", tt)
		}
		if radius != eps {
			t.Fatalf("radius = %v, want %v", radius, eps)
		}
		truth, ok := p.LocAt(tt)
		if !ok {
			t.Fatalf("no truth at t=%v", tt)
		}
		if d := truth.Dist(pos); d > radius+1e-9 {
			t.Errorf("t=%v: true position %.2f m from answer, beyond radius %v", tt, d, radius)
		}
	}
	if _, _, ok := st.PositionBoundAt("ghost", 0); ok {
		t.Error("unknown object answered")
	}
}

func TestQuery(t *testing.T) {
	st := New(Options{CellSize: 100})
	// Object A crosses the query window in space and time; B is elsewhere;
	// C passes through the right place at the wrong time.
	feed(t, st, "a", trajectory.MustNew([]trajectory.Sample{
		trajectory.S(0, 0, 0), trajectory.S(10, 500, 0),
	}))
	feed(t, st, "b", trajectory.MustNew([]trajectory.Sample{
		trajectory.S(0, 0, 5000), trajectory.S(10, 500, 5000),
	}))
	feed(t, st, "c", trajectory.MustNew([]trajectory.Sample{
		trajectory.S(100, 0, 0), trajectory.S(110, 500, 0),
	}))
	rect := geo.Rect{Min: geo.Pt(200, -50), Max: geo.Pt(300, 50)}

	got := st.Query(rect, 0, 20)
	if len(got) != 1 || got[0] != "a" {
		t.Errorf("Query = %v, want [a]", got)
	}
	got = st.Query(rect, 90, 120)
	if len(got) != 1 || got[0] != "c" {
		t.Errorf("Query(later) = %v, want [c]", got)
	}
	if got = st.Query(rect, 30, 60); len(got) != 0 {
		t.Errorf("Query(gap) = %v, want empty", got)
	}
	if got = st.Query(geo.EmptyRect(), 0, 20); len(got) != 0 {
		t.Errorf("empty rect query = %v", got)
	}
}

func TestQuerySeesBufferedTail(t *testing.T) {
	st := New(Options{
		NewCompressor: func() stream.Compressor { return stream.NewOPWTR(1e9, 0) },
	})
	// Everything after the first fix is buffered inside the compressor.
	feed(t, st, "car", trajectory.MustNew([]trajectory.Sample{
		trajectory.S(0, 0, 0), trajectory.S(10, 1000, 0),
	}))
	rect := geo.Rect{Min: geo.Pt(900, -10), Max: geo.Pt(1100, 10)}
	if got := st.Query(rect, 0, 20); len(got) != 1 || got[0] != "car" {
		t.Errorf("buffered tail invisible to Query: %v", got)
	}
}

func TestIDsAndStats(t *testing.T) {
	st := New(Options{})
	feed(t, st, "zebra", trajectory.MustNew([]trajectory.Sample{trajectory.S(0, 0, 0)}))
	feed(t, st, "ant", trajectory.MustNew([]trajectory.Sample{trajectory.S(0, 0, 0)}))
	ids := st.IDs()
	if len(ids) != 2 || ids[0] != "ant" || ids[1] != "zebra" {
		t.Errorf("IDs = %v", ids)
	}
	s := st.Stats()
	if s.Objects != 2 || s.RawPoints != 2 {
		t.Errorf("Stats = %+v", s)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	st := New(Options{})
	g := gpsgen.New(3, gpsgen.Config{})
	p1 := g.Trip(gpsgen.Urban, 600)
	p2 := g.Trip(gpsgen.Rural, 600)
	feed(t, st, "u", p1)
	feed(t, st, "r", p2)

	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	st2 := New(Options{})
	if err := st2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"u", "r"} {
		a, _ := st.Snapshot(id)
		b, ok := st2.Snapshot(id)
		if !ok || a.Len() != b.Len() {
			t.Errorf("object %q: %d vs %d points after load", id, a.Len(), b.Len())
		}
	}
	// Loaded store stays queryable.
	if len(st2.IDs()) != 2 {
		t.Errorf("loaded IDs = %v", st2.IDs())
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	st := New(Options{})
	if err := st.Load(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Error("garbage snapshot accepted")
	}
}

func TestConcurrentAppendAndQuery(t *testing.T) {
	st := New(Options{
		NewCompressor: func() stream.Compressor { return stream.NewOPWTR(30, 0) },
	})
	g := gpsgen.New(4, gpsgen.Config{})
	trips := make([]trajectory.Trajectory, 8)
	for i := range trips {
		trips[i] = g.Trip(gpsgen.Urban, 300)
	}
	var wg sync.WaitGroup
	for i, p := range trips {
		wg.Add(1)
		go func(id string, p trajectory.Trajectory) {
			defer wg.Done()
			for _, s := range p {
				if err := st.Append(id, s); err != nil {
					t.Errorf("append %s: %v", id, err)
					return
				}
			}
		}(fmt.Sprintf("car-%d", i), p)
	}
	// Concurrent readers.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 100; k++ {
				st.Query(geo.Rect{Min: geo.Pt(-1e4, -1e4), Max: geo.Pt(1e4, 1e4)}, 0, 1e6)
				st.Stats()
				st.IDs()
			}
		}()
	}
	wg.Wait()
	if got := st.Stats().Objects; got != len(trips) {
		t.Errorf("objects = %d, want %d", got, len(trips))
	}
}

// TestStoreMetrics checks the store's instruments end to end against a
// private registry: append/evict/query counters, the gauges' delta
// discipline, and the per-kind query latency histograms.
func TestStoreMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	st := New(Options{
		NewCompressor: func() stream.Compressor { return stream.NewOPWTR(25, 0) },
		Metrics:       reg,
	})
	for i := 0; i < 50; i++ {
		feed(t, st, "a", trajectory.Trajectory{trajectory.S(float64(i), float64(i*10), 0)})
	}
	feed(t, st, "b", trajectory.Trajectory{trajectory.S(0, 5000, 5000), trajectory.S(10, 5100, 5000)})
	if err := st.Append("a", trajectory.S(10, 0, 0)); err == nil {
		t.Fatal("unsorted append did not fail")
	}

	st.Query(geo.Rect{Min: geo.Pt(-1, -1), Max: geo.Pt(1, 1)}, 0, 100)
	st.QueryWithTolerance(geo.Rect{Min: geo.Pt(-1, -1), Max: geo.Pt(1, 1)}, 0, 100, 30)
	st.PositionAt("a", 5)
	st.Nearest(geo.Pt(0, 0), 5, 1)

	want := map[string]float64{
		"store_appends_total":       52,
		"store_append_errors_total": 1,
		"store_objects":             2,
	}
	counts := map[string]int64{}
	for _, m := range reg.Snapshot() {
		if v, ok := want[m.Name]; ok && m.Value != v {
			t.Errorf("%s = %v, want %v", m.Name, m.Value, v)
		}
		if m.Name == "store_query_seconds" {
			counts[m.Labels[0].Value] = m.Count
		}
	}
	for _, kind := range []string{"range", "tolerance", "nearest", "position"} {
		// Nearest and QueryWithTolerance route through PositionAt/queryIDs
		// without re-timing, so each kind observes exactly once — except
		// position, which Nearest's snapshot path does not touch.
		if counts[kind] != 1 {
			t.Errorf("store_query_seconds{kind=%q} count = %d, want 1", kind, counts[kind])
		}
	}

	// Eviction publishes deltas: the retained gauge must equal the store's
	// own accounting afterwards.
	removed := st.EvictBefore(5)
	stats := st.Stats()
	for _, m := range reg.Snapshot() {
		switch m.Name {
		case "store_evictions_total":
			if m.Value != 1 {
				t.Errorf("store_evictions_total = %v, want 1", m.Value)
			}
		case "store_evicted_samples_total":
			if int(m.Value) != removed {
				t.Errorf("store_evicted_samples_total = %v, want %d", m.Value, removed)
			}
		case "store_retained_samples":
			if int(m.Value) != stats.RetainedPoints {
				t.Errorf("store_retained_samples = %v, want %d", m.Value, stats.RetainedPoints)
			}
		case "store_objects":
			if int(m.Value) != stats.Objects {
				t.Errorf("store_objects = %v, want %d", m.Value, stats.Objects)
			}
		}
	}
}

// TestStatsPointsPerObject checks the per-object breakdown sums to the
// retained total from the same snapshot.
func TestStatsPointsPerObject(t *testing.T) {
	st := New(Options{})
	feed(t, st, "x", trajectory.Trajectory{trajectory.S(0, 0, 0), trajectory.S(1, 1, 0)})
	feed(t, st, "y", trajectory.Trajectory{trajectory.S(0, 9, 9)})
	s := st.Stats()
	if s.PointsPerObject["x"] != 2 || s.PointsPerObject["y"] != 1 {
		t.Errorf("PointsPerObject = %v, want x:2 y:1", s.PointsPerObject)
	}
	sum := 0
	for _, n := range s.PointsPerObject {
		sum += n
	}
	if sum != s.RetainedPoints {
		t.Errorf("breakdown sums to %d, want %d", sum, s.RetainedPoints)
	}
}
