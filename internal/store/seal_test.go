package store

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/geo"
	"repro/internal/gpsgen"
	"repro/internal/metrics"
	"repro/internal/trajectory"
)

// sealEpoch puts sealed-tier tests at Unix-time magnitude, where float64
// time resolution is coarsest.
const sealEpoch = 1.7e9

// eastbound returns n samples marching east from x0 at 1 m/s, every 10 s.
func eastbound(t0, x0 float64, n int) trajectory.Trajectory {
	out := make(trajectory.Trajectory, n)
	for i := range out {
		out[i] = trajectory.S(t0+float64(i)*10, x0+float64(i)*10, 0)
	}
	return out
}

func newSealingStore(t *testing.T) *Store {
	t.Helper()
	return New(Options{SealEps: 2, SealBlockPoints: 32, Shards: 4, Metrics: metrics.NewRegistry()})
}

func TestSealBeforeRequiresTier(t *testing.T) {
	st := New(Options{Metrics: metrics.NewRegistry()})
	if st.SealEnabled() {
		t.Fatal("tier present without SealEps")
	}
	if _, err := st.SealBefore(100); !errors.Is(err, ErrSealDisabled) {
		t.Fatalf("SealBefore without tier: %v", err)
	}
}

func TestEvictBeforeSealsInsteadOfDropping(t *testing.T) {
	st := newSealingStore(t)
	p := eastbound(sealEpoch, 0, 100)
	feed(t, st, "car", p)

	cutT := sealEpoch + 500 // first surviving sample is index 50
	removed := st.EvictBefore(cutT)
	if removed != 50 {
		t.Fatalf("EvictBefore removed %d, want 50", removed)
	}
	if st.SealedPoints() != 51 {
		t.Errorf("sealed points = %d, want 51 (50 aged + overlap head)", st.SealedPoints())
	}
	if st.SealedBlocks() == 0 || st.SealedBytes() == 0 {
		t.Error("sealed footprint not accounted")
	}

	// The hot tier kept the tail, including the boundary sample.
	snap, ok := st.Snapshot("car")
	if !ok || snap.Len() != 50 {
		t.Fatalf("hot snapshot = %d samples, want 50", snap.Len())
	}
	if snap[0].T != p[50].T {
		t.Errorf("hot tier starts at t=%v, want boundary %v", snap[0].T, p[50].T)
	}

	// Old, sealed-only history still answers range queries.
	early := geo.Rect{Min: geo.Pt(95, -5), Max: geo.Pt(105, 5)} // around sample 10
	ids := st.Query(early, sealEpoch, sealEpoch+200)
	if len(ids) != 1 || ids[0] != "car" {
		t.Errorf("sealed-era Query = %v, want [car]", ids)
	}
}

func TestSealBeforeMatchesEvictAndIsIdempotent(t *testing.T) {
	st := newSealingStore(t)
	p := eastbound(sealEpoch, 0, 60)
	feed(t, st, "car", p)

	moved, err := st.SealBefore(sealEpoch + 300)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 30 {
		t.Fatalf("SealBefore moved %d, want 30", moved)
	}
	// Sealing again at the same cut is a no-op.
	moved, err = st.SealBefore(sealEpoch + 300)
	if err != nil || moved != 0 {
		t.Fatalf("second SealBefore = (%d, %v), want (0, nil)", moved, err)
	}
	// Advancing the cut seals the next run, continuing the chain.
	moved, err = st.SealBefore(sealEpoch + 450)
	if err != nil || moved != 15 {
		t.Fatalf("third SealBefore = (%d, %v), want (15, nil)", moved, err)
	}
	if st.SealedPoints() != 46 {
		t.Errorf("sealed points = %d, want 46 (samples 0..45, boundaries counted once)", st.SealedPoints())
	}
}

func TestQueryStraddlesHotColdBoundary(t *testing.T) {
	st := newSealingStore(t)
	p := eastbound(sealEpoch, 0, 100)
	feed(t, st, "car", p)
	if _, err := st.SealBefore(sealEpoch + 500); err != nil {
		t.Fatal(err)
	}

	// A window spanning the boundary (samples ~40..60) must answer from the
	// union of both tiers.
	straddle := geo.Rect{Min: geo.Pt(400, -5), Max: geo.Pt(600, 5)}
	ids := st.Query(straddle, sealEpoch+400, sealEpoch+600)
	if len(ids) != 1 || ids[0] != "car" {
		t.Fatalf("straddling Query = %v, want [car]", ids)
	}

	pts := st.RangePoints(straddle, sealEpoch+400, sealEpoch+600)
	if len(pts) != 21 {
		t.Fatalf("straddling RangePoints = %d points, want 21 (samples 40..60, boundary once)", len(pts))
	}
	for i, rp := range pts {
		want := p[40+i]
		if rp.ID != "car" || rp.S.Pos().Dist(want.Pos()) > 2 {
			t.Errorf("point %d = %v, want within eps of %v", i, rp.S, want)
		}
	}
	// The boundary sample must appear exactly once and bit-exact (it is
	// stored exactly in both tiers).
	seen := 0
	for _, rp := range pts {
		if rp.S == p[50] {
			seen++
		}
	}
	if seen != 1 {
		t.Errorf("boundary sample reported %d times, want exactly 1", seen)
	}
}

func TestNearestFallsBackToColdTier(t *testing.T) {
	st := newSealingStore(t)
	feed(t, st, "old", eastbound(sealEpoch, 0, 50))          // ends t+490
	feed(t, st, "fresh", eastbound(sealEpoch+1000, 1e4, 50)) // hot era only
	// Age out everything before t+600: "old" becomes sealed-only (its hot
	// object is dropped entirely), "fresh" stays hot.
	if _, err := st.SealBefore(sealEpoch + 600); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Snapshot("old"); ok {
		t.Fatal("fully aged object still hot")
	}

	// kNN at a sealed-era instant finds "old" from its blocks.
	nbs := st.Nearest(geo.Pt(100, 0), sealEpoch+100, 2)
	if len(nbs) != 1 || nbs[0].ID != "old" {
		t.Fatalf("sealed-era Nearest = %+v, want [old]", nbs)
	}
	if nbs[0].Pos.Dist(geo.Pt(100, 0)) > 2+1e-9 {
		t.Errorf("sealed-era position %v off by more than eps", nbs[0].Pos)
	}

	// kNN at a hot-era instant finds "fresh" from the hot tier.
	nbs = st.Nearest(geo.Pt(1e4, 0), sealEpoch+1100, 2)
	if len(nbs) != 1 || nbs[0].ID != "fresh" {
		t.Fatalf("hot-era Nearest = %+v, want [fresh]", nbs)
	}
}

func TestNearestPrefersHotTier(t *testing.T) {
	st := newSealingStore(t)
	p := eastbound(sealEpoch, 0, 100)
	feed(t, st, "car", p)
	if _, err := st.SealBefore(sealEpoch + 500); err != nil {
		t.Fatal(err)
	}
	// The boundary instant is covered by both tiers: exactly one result.
	nbs := st.Nearest(geo.Pt(500, 0), sealEpoch+500, 10)
	if len(nbs) != 1 {
		t.Fatalf("boundary Nearest = %+v, want exactly one result", nbs)
	}
	// Hot tier is exact, so the position matches the original sample.
	if !nbs[0].Pos.Equal(p[50].Pos()) {
		t.Errorf("boundary position %v, want exact hot %v", nbs[0].Pos, p[50].Pos())
	}
}

func TestSealOnEvictAcrossShardsAndQueryTolerance(t *testing.T) {
	st := New(Options{SealEps: 3, SealBlockPoints: 16, Shards: 8, Metrics: metrics.NewRegistry()})
	g := gpsgen.New(11, gpsgen.Config{})
	fleet := g.Fleet(10, 2000, 1500)
	orig := map[string]trajectory.Trajectory{}
	for i, p := range fleet {
		id := fmt.Sprintf("v%d", i)
		q := p.Clone()
		for j := range q {
			q[j].T += sealEpoch
		}
		orig[id] = q
		feed(t, st, id, q)
	}
	hotStats := st.Stats()

	if _, err := st.SealBefore(sealEpoch + 1000); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.SealedPoints == 0 {
		t.Fatal("nothing sealed across shards")
	}
	if stats.RetainedPoints >= hotStats.RetainedPoints {
		t.Error("hot tier did not shrink")
	}

	// QueryWithTolerance over the sealed era must keep the no-false-negative
	// contract against the original points.
	for id, p := range orig {
		s := p[p.Len()/4] // a sealed-era sample
		rect := geo.Rect{Min: s.Pos(), Max: s.Pos()}.Expand(1)
		ids := st.QueryWithTolerance(rect, s.T-1, s.T+1, 0)
		found := false
		for _, got := range ids {
			if got == id {
				found = true
			}
		}
		if !found {
			t.Errorf("object %s missing from tolerance query at its own sealed sample", id)
		}
	}
}

func TestRangePointsHotOnly(t *testing.T) {
	st := New(Options{Metrics: metrics.NewRegistry()}) // no sealing
	p := eastbound(sealEpoch, 0, 20)
	feed(t, st, "car", p)
	pts := st.RangePoints(geo.Rect{Min: geo.Pt(45, -1), Max: geo.Pt(105, 1)}, sealEpoch, sealEpoch+1e4)
	if len(pts) != 6 {
		t.Fatalf("hot RangePoints = %d, want 6 (samples 5..10)", len(pts))
	}
	for i, rp := range pts {
		if rp.S != p[5+i] {
			t.Errorf("hot point %d = %v, want exact %v", i, rp.S, p[5+i])
		}
	}
	if got := st.RangePoints(geo.EmptyRect(), 0, 1); got != nil {
		t.Errorf("empty rect returned %v", got)
	}
}
