package store

import (
	"runtime"
	"sync"
)

// shard is one independent slice of the store: it owns the objects whose IDs
// hash to it, the spatiotemporal index segment over their retained
// trajectories, and the per-shard bookkeeping counters. Every shard has its
// own lock, so appends to objects on different shards never contend.
type shard struct {
	mu      sync.RWMutex
	objects map[string]*object
	index   spatialIndex
	rawPts  int
	idxSegs int // segments currently in this shard's index
}

// fnv1a is the 32-bit FNV-1a hash of id, computed inline so shard selection
// allocates nothing on the append hot path.
func fnv1a(id string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return h
}

// shardOf returns the shard owning id. The mapping is pure: the same id
// always selects the same shard for the lifetime of the store.
func (st *Store) shardOf(id string) *shard {
	return st.shards[fnv1a(id)&st.mask]
}

// normalizeShards maps the requested shard count to the actual power-of-two
// count used: values ≤ 0 select the default max(8, 2×GOMAXPROCS); any other
// value is rounded up to the next power of two (capped at 1<<16 so a typo
// cannot allocate millions of shards).
func normalizeShards(n int) int {
	if n <= 0 {
		n = 2 * runtime.GOMAXPROCS(0)
		if n < 8 {
			n = 8
		}
	}
	const maxShards = 1 << 16
	if n > maxShards {
		return maxShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// newIndex builds one shard's empty spatiotemporal index per the options.
func newIndex(opts Options) spatialIndex {
	switch opts.Index {
	case IndexRTree:
		return newRTreeIndex()
	default:
		return newGridIndex(opts.CellSize)
	}
}
