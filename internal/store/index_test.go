package store

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/gpsgen"
	"repro/internal/trajectory"
)

// Both index kinds must answer every query with the identical ID set.
func TestGridAndRTreeAgree(t *testing.T) {
	grid := New(Options{Index: IndexGrid, CellSize: 700})
	rt := New(Options{Index: IndexRTree})

	g := gpsgen.New(6, gpsgen.Config{})
	var bounds geo.Rect = geo.EmptyRect()
	var tMax float64
	for v := 0; v < 12; v++ {
		kind := []gpsgen.TripKind{gpsgen.Urban, gpsgen.Mixed, gpsgen.Rural}[v%3]
		p := g.Trip(kind, 900).Shift(0, float64(v%4)*3000, float64(v/4)*3000)
		id := fmt.Sprintf("car-%d", v)
		for _, s := range p {
			if err := grid.Append(id, s); err != nil {
				t.Fatal(err)
			}
			if err := rt.Append(id, s); err != nil {
				t.Fatal(err)
			}
		}
		bounds = bounds.Union(p.Bounds())
		if p.EndTime() > tMax {
			tMax = p.EndTime()
		}
	}

	rng := rand.New(rand.NewSource(44))
	for q := 0; q < 200; q++ {
		cx := bounds.Min.X + rng.Float64()*bounds.Width()
		cy := bounds.Min.Y + rng.Float64()*bounds.Height()
		half := 100 + rng.Float64()*3000
		rect := geo.Rect{Min: geo.Pt(cx-half, cy-half), Max: geo.Pt(cx+half, cy+half)}
		t0 := rng.Float64() * tMax
		t1 := t0 + rng.Float64()*tMax/2

		a := grid.Query(rect, t0, t1)
		b := rt.Query(rect, t0, t1)
		if len(a) != len(b) {
			t.Fatalf("query %d: grid %v vs rtree %v", q, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %d: grid %v vs rtree %v", q, a, b)
			}
		}
	}
}

func TestRTreeStoreBasics(t *testing.T) {
	st := New(Options{Index: IndexRTree})
	feed(t, st, "a", trajectory.MustNew([]trajectory.Sample{
		trajectory.S(0, 0, 0), trajectory.S(10, 500, 0),
	}))
	got := st.Query(geo.Rect{Min: geo.Pt(200, -50), Max: geo.Pt(300, 50)}, 0, 20)
	if len(got) != 1 || got[0] != "a" {
		t.Errorf("Query = %v", got)
	}
	if got := st.Query(geo.Rect{Min: geo.Pt(200, -50), Max: geo.Pt(300, 50)}, 50, 60); len(got) != 0 {
		t.Errorf("time-disjoint Query = %v", got)
	}
}
