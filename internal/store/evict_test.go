package store

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/trajectory"
)

func TestEvictBefore(t *testing.T) {
	for _, kind := range []IndexKind{IndexGrid, IndexRTree} {
		st := New(Options{Index: kind, CellSize: 100})
		var line trajectory.Trajectory
		for i := 0; i <= 10; i++ {
			line = append(line, trajectory.S(float64(i*10), float64(i*100), 0))
		}
		feed(t, st, "a", line)
		// A second object entirely in the old era.
		feed(t, st, "old", trajectory.MustNew([]trajectory.Sample{
			trajectory.S(0, 5000, 5000), trajectory.S(10, 5100, 5000),
		}))

		removed := st.EvictBefore(50)
		if removed == 0 {
			t.Fatalf("index %v: nothing evicted", kind)
		}
		// Object "old" vanished entirely.
		if _, ok := st.Snapshot("old"); ok {
			t.Errorf("index %v: fully aged object survived", kind)
		}
		// "a" keeps its tail from t ≥ 50.
		snap, ok := st.Snapshot("a")
		if !ok {
			t.Fatalf("index %v: surviving object lost", kind)
		}
		if snap[0].T != 50 {
			t.Errorf("index %v: snapshot starts at %v, want 50", kind, snap[0].T)
		}
		// The index no longer answers for the evicted era...
		oldRect := geo.Rect{Min: geo.Pt(-10, -10), Max: geo.Pt(410, 10)}
		if got := st.Query(oldRect, 0, 40); len(got) != 0 {
			t.Errorf("index %v: evicted era still answers: %v", kind, got)
		}
		// ...but still answers for the surviving era.
		newRect := geo.Rect{Min: geo.Pt(590, -10), Max: geo.Pt(710, 10)}
		if got := st.Query(newRect, 55, 75); len(got) != 1 || got[0] != "a" {
			t.Errorf("index %v: surviving era lost: %v", kind, got)
		}
	}
}

func TestEvictBeforeNothingToDo(t *testing.T) {
	st := New(Options{})
	feed(t, st, "a", trajectory.MustNew([]trajectory.Sample{
		trajectory.S(100, 0, 0), trajectory.S(110, 100, 0),
	}))
	if removed := st.EvictBefore(50); removed != 0 {
		t.Errorf("evicted %d from fresh store", removed)
	}
	if snap, ok := st.Snapshot("a"); !ok || snap.Len() != 2 {
		t.Error("eviction disturbed untouched object")
	}
}
