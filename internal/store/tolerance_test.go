package store

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/gpsgen"
	"repro/internal/stream"
	"repro/internal/trajectory"
)

// With compression on, a plain Query can miss objects whose true path
// clipped a rectangle that the straightened segments miss;
// QueryWithTolerance(eps) must never miss them (no false negatives
// relative to the original movement).
func TestQueryWithToleranceNoFalseNegatives(t *testing.T) {
	const eps = 60.0
	compressed := New(Options{
		NewCompressor: func() stream.Compressor { return stream.NewOPWTR(eps, 0) },
		CellSize:      400,
	})
	truth := New(Options{CellSize: 400}) // raw reference store

	g := gpsgen.New(61, gpsgen.Config{})
	bounds := geo.EmptyRect()
	var tMax float64
	for v := 0; v < 8; v++ {
		p := g.Trip(gpsgen.Urban, 900)
		id := fmt.Sprintf("car-%d", v)
		for _, s := range p {
			if err := compressed.Append(id, s); err != nil {
				t.Fatal(err)
			}
			if err := truth.Append(id, s); err != nil {
				t.Fatal(err)
			}
		}
		bounds = bounds.Union(p.Bounds())
		if p.EndTime() > tMax {
			tMax = p.EndTime()
		}
	}

	rng := rand.New(rand.NewSource(9))
	var missesWithoutTolerance int
	for q := 0; q < 300; q++ {
		cx := bounds.Min.X + rng.Float64()*bounds.Width()
		cy := bounds.Min.Y + rng.Float64()*bounds.Height()
		half := 50 + rng.Float64()*500
		rect := geo.Rect{Min: geo.Pt(cx-half, cy-half), Max: geo.Pt(cx+half, cy+half)}
		t0 := rng.Float64() * tMax
		t1 := t0 + rng.Float64()*tMax/3

		want := truth.Query(rect, t0, t1)
		gotTol := toSet(compressed.QueryWithTolerance(rect, t0, t1, eps))
		for _, id := range want {
			if !gotTol[id] {
				t.Fatalf("query %d: object %s present in truth but missed with tolerance", q, id)
			}
		}
		gotPlain := toSet(compressed.Query(rect, t0, t1))
		for _, id := range want {
			if !gotPlain[id] {
				missesWithoutTolerance++
				break
			}
		}
	}
	// The tolerance must actually be needed on this workload; otherwise the
	// test proves nothing.
	if missesWithoutTolerance == 0 {
		t.Log("note: plain Query never missed; workload may be too easy for the tolerance test")
	}
}

func TestQueryWithToleranceNegativeEps(t *testing.T) {
	st := New(Options{})
	var line trajectory.Trajectory
	for i := 0; i <= 10; i++ {
		line = append(line, trajectory.S(float64(i), float64(i*10), 0))
	}
	feed(t, st, "a", line)
	rect := geo.Rect{Min: geo.Pt(40, -10), Max: geo.Pt(60, 10)}
	// Negative eps is clamped to zero, not shrunk.
	if got := st.QueryWithTolerance(rect, 0, 10, -100); len(got) != 1 {
		t.Errorf("QueryWithTolerance(-100) = %v", got)
	}
}

func toSet(ids []string) map[string]bool {
	m := make(map[string]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}
