package store

import (
	"errors"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/trajectory"
)

// ErrSealDisabled is returned by SealBefore when the store was built
// without a cold tier (Options.SealEps == 0).
var ErrSealDisabled = errors.New("store: sealing disabled (no SealEps configured)")

// SealEnabled reports whether the store has a cold sealed tier.
func (st *Store) SealEnabled() bool { return st.cold != nil }

// SealedBlocks returns the number of blocks in the cold tier (0 when
// sealing is disabled).
func (st *Store) SealedBlocks() int {
	if st.cold == nil {
		return 0
	}
	return st.cold.Blocks()
}

// SealedPoints returns the number of distinct samples in the cold tier
// (0 when sealing is disabled).
func (st *Store) SealedPoints() int {
	if st.cold == nil {
		return 0
	}
	return st.cold.Points()
}

// SealedBytes returns the cold tier's accounted compressed footprint
// (0 when sealing is disabled).
func (st *Store) SealedBytes() int64 {
	if st.cold == nil {
		return 0
	}
	return st.cold.CompressedBytes()
}

// SealBefore moves every retained sample older than t (exclusive) from the
// hot tier into the cold sealed tier — the explicit SEAL trigger, identical
// to EvictBefore with sealing enabled. The first surviving sample of each
// object is sealed too (as the chain's overlap head) so queries straddling
// the hot/cold boundary interpolate seamlessly; it stays hot as well, and
// the duplicate is suppressed at query time by exact comparison. Returns
// the number of samples removed from the hot tier; ErrSealDisabled when the
// store has no cold tier.
//
// Sealing never creates a durability dependency: the authoritative copy of
// sealed samples is the write-ahead log (the cold tier is regenerable by
// replaying it), which is why wal.DurableStore refuses to compact its log
// while sealed history exists.
func (st *Store) SealBefore(t float64) (int, error) {
	if st.cold == nil {
		return 0, ErrSealDisabled
	}
	return st.ageBefore(t, true)
}

// RangePoint is one point returned by RangePoints.
type RangePoint struct {
	ID string
	S  trajectory.Sample
}

// RangePoints returns every stored point inside the rectangle during
// [t0, t1], ordered by object ID then time — the union of hot retained
// samples (exact, strictly inside the rectangle) and, when sealing is
// enabled, cold sealed samples (reconstructed, evaluated against the
// rectangle expanded by each block's recorded error bound ε, so sealing
// introduces no false dismissals; reconstructions within ε outside the
// rectangle may be included). The sample sealed as each chain's boundary
// overlap is reported once.
func (st *Store) RangePoints(rect geo.Rect, t0, t1 float64) []RangePoint {
	defer st.ins.querySeconds["points"].ObserveSince(time.Now())
	if rect.IsEmpty() || t1 < t0 {
		return nil
	}
	byID := make(map[string][]trajectory.Sample)
	for _, sh := range st.shards {
		sh.mu.RLock()
		for id, obj := range sh.objects {
			for _, s := range obj.snapshot() {
				if s.T >= t0 && s.T <= t1 && rect.Contains(s.Pos()) {
					byID[id] = append(byID[id], s)
				}
			}
		}
		sh.mu.RUnlock()
	}
	if st.cold != nil {
		for _, h := range st.cold.RangePoints(rect, t0, t1) {
			byID[h.ID] = append(byID[h.ID], h.S)
		}
	}

	ids := make([]string, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var out []RangePoint
	for _, id := range ids {
		ss := byID[id]
		sort.Slice(ss, func(i, j int) bool { return ss[i].T < ss[j].T })
		for i, s := range ss {
			// The hot/cold boundary sample is stored exactly in both tiers;
			// suppress the duplicate by exact timestamp comparison.
			//lint:allow floatcmp duplicate of the identical stored sample, compared bit-exactly
			if i > 0 && s.T == ss[i-1].T {
				continue
			}
			out = append(out, RangePoint{ID: id, S: s})
		}
	}
	return out
}

// mergeIDs merges two sorted, duplicate-free ID slices into one.
func mergeIDs(a, b []string) []string {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
