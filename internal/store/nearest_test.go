package store

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/trajectory"
)

func TestNearest(t *testing.T) {
	st := New(Options{})
	// Three objects moving east on parallel tracks at y = 0, 100, 300.
	for i, y := range []float64{0, 100, 300} {
		id := []string{"close", "mid", "far"}[i]
		feed(t, st, id, trajectory.MustNew([]trajectory.Sample{
			trajectory.S(0, 0, y), trajectory.S(10, 100, y),
		}))
	}
	// One object outside the time span.
	feed(t, st, "ghost", trajectory.MustNew([]trajectory.Sample{
		trajectory.S(100, 0, 0), trajectory.S(110, 100, 0),
	}))

	got := st.Nearest(geo.Pt(50, 0), 5, 2)
	if len(got) != 2 {
		t.Fatalf("Nearest returned %d results", len(got))
	}
	if got[0].ID != "close" || got[1].ID != "mid" {
		t.Errorf("order = %s, %s", got[0].ID, got[1].ID)
	}
	if got[0].Dist > 1e-9 {
		t.Errorf("closest distance = %v, want 0", got[0].Dist)
	}
	if !got[1].Pos.AlmostEqual(geo.Pt(50, 100), 1e-9) {
		t.Errorf("mid position = %v", got[1].Pos)
	}
	// k larger than the live population.
	if got := st.Nearest(geo.Pt(0, 0), 5, 10); len(got) != 3 {
		t.Errorf("want 3 live objects, got %d", len(got))
	}
	// k ≤ 0 yields nothing.
	if got := st.Nearest(geo.Pt(0, 0), 5, 0); got != nil {
		t.Errorf("k=0 returned %v", got)
	}
	// Time with nobody live.
	if got := st.Nearest(geo.Pt(0, 0), 50, 3); len(got) != 0 {
		t.Errorf("dead time returned %v", got)
	}
}
