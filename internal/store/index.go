package store

import (
	"math"

	"repro/internal/geo"
	"repro/internal/rtree"
)

// spatialIndex abstracts the spatiotemporal segment index backing Query.
type spatialIndex interface {
	insert(id string, box geo.Rect, t0, t1 float64)
	query(rect geo.Rect, t0, t1 float64) map[string]bool
}

// gridIndex is a uniform spatial grid over trajectory segments. Each entry
// carries the segment's bounding box and time interval; a segment spanning
// several cells is inserted into each.
type gridIndex struct {
	cell  float64
	cells map[cellKey][]entry
}

type cellKey struct{ cx, cy int32 }

type entry struct {
	id     string
	box    geo.Rect
	t0, t1 float64
}

func newGridIndex(cell float64) *gridIndex {
	return &gridIndex{cell: cell, cells: make(map[cellKey][]entry)}
}

// keyOf maps a position to its cell.
func (g *gridIndex) keyOf(p geo.Point) cellKey {
	return cellKey{
		cx: int32(math.Floor(p.X / g.cell)),
		cy: int32(math.Floor(p.Y / g.cell)),
	}
}

// insert registers one segment under every cell its bounding box covers.
func (g *gridIndex) insert(id string, box geo.Rect, t0, t1 float64) {
	if box.IsEmpty() {
		return
	}
	e := entry{id: id, box: box, t0: t0, t1: t1}
	lo, hi := g.keyOf(box.Min), g.keyOf(box.Max)
	for cx := lo.cx; cx <= hi.cx; cx++ {
		for cy := lo.cy; cy <= hi.cy; cy++ {
			k := cellKey{cx, cy}
			g.cells[k] = append(g.cells[k], e)
		}
	}
}

// query returns the set of object IDs with a segment whose bounding box
// intersects rect and whose time interval overlaps [t0, t1].
func (g *gridIndex) query(rect geo.Rect, t0, t1 float64) map[string]bool {
	hits := make(map[string]bool)
	if rect.IsEmpty() || t1 < t0 {
		return hits
	}
	lo, hi := g.keyOf(rect.Min), g.keyOf(rect.Max)
	for cx := lo.cx; cx <= hi.cx; cx++ {
		for cy := lo.cy; cy <= hi.cy; cy++ {
			for _, e := range g.cells[cellKey{cx, cy}] {
				if hits[e.id] {
					continue
				}
				if e.box.Intersects(rect) && overlaps(e.t0, e.t1, t0, t1) {
					hits[e.id] = true
				}
			}
		}
	}
	return hits
}

// rtreeIndex backs the store with the 3D R-tree of internal/rtree.
type rtreeIndex struct {
	tree *rtree.Tree
}

func newRTreeIndex() *rtreeIndex {
	return &rtreeIndex{tree: rtree.New()}
}

func (r *rtreeIndex) insert(id string, box geo.Rect, t0, t1 float64) {
	if box.IsEmpty() {
		return
	}
	r.tree.Insert(rtree.Box{Rect: box, T0: t0, T1: t1}, id)
}

func (r *rtreeIndex) query(rect geo.Rect, t0, t1 float64) map[string]bool {
	hits := make(map[string]bool)
	if rect.IsEmpty() || t1 < t0 {
		return hits
	}
	r.tree.Search(rtree.Box{Rect: rect, T0: t0, T1: t1}, func(id string) bool {
		hits[id] = true
		return true
	})
	return hits
}
