package store

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"

	"repro/internal/geo"
	"repro/internal/gpsgen"
	"repro/internal/metrics"
	"repro/internal/trajectory"
)

// FNV-1a 32-bit reference vectors (Fowler/Noll/Vo; also RFC draft test
// suite). The shard mapping must stay stable across releases — a changed
// hash would silently re-home every object.
func TestFNV1aVectors(t *testing.T) {
	vectors := map[string]uint32{
		"":       2166136261,
		"a":      0xe40c292c,
		"b":      0xe70c2de5,
		"foobar": 0xbf9cf968,
		"bus-17": fnv1a("bus-17"), // self-consistency for a repo-shaped ID
	}
	for in, want := range vectors {
		if got := fnv1a(in); got != want {
			t.Errorf("fnv1a(%q) = %#x, want %#x", in, got, want)
		}
	}
}

func TestShardMappingStable(t *testing.T) {
	st := New(Options{Shards: 8})
	if st.NumShards() != 8 {
		t.Fatalf("NumShards = %d, want 8", st.NumShards())
	}
	hit := make(map[*shard]int)
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("obj-%d", i)
		sh := st.shardOf(id)
		if sh != st.shards[fnv1a(id)&st.mask] {
			t.Fatalf("shardOf(%q) disagrees with fnv1a&mask", id)
		}
		if sh != st.shardOf(id) {
			t.Fatalf("shardOf(%q) is not deterministic", id)
		}
		hit[sh]++
	}
	if len(hit) != 8 {
		t.Errorf("1000 ids landed in %d of 8 shards; selection is skewed", len(hit))
	}
	for sh, n := range hit {
		if n < 50 {
			t.Errorf("shard %p got only %d of 1000 ids", sh, n)
		}
	}
}

func TestNormalizeShards(t *testing.T) {
	def := 2 * runtime.GOMAXPROCS(0)
	if def < 8 {
		def = 8
	}
	cases := map[int]int{
		-1:        def,
		0:         def,
		1:         1,
		2:         2,
		3:         4,
		8:         8,
		9:         16,
		1000:      1024,
		1 << 16:   1 << 16,
		1<<16 + 1: 1 << 16, // capped
		1 << 20:   1 << 16, // capped
	}
	for in, want := range cases {
		if got := normalizeShards(in); got != want {
			t.Errorf("normalizeShards(%d) = %d, want %d", in, got, want)
		}
	}
	// Every result must be a power of two: the shard selector is a bitmask.
	for in := -4; in < 70; in++ {
		got := normalizeShards(in)
		if got <= 0 || got&(got-1) != 0 {
			t.Errorf("normalizeShards(%d) = %d, not a power of two", in, got)
		}
	}
}

// fleetStores loads the same seeded gpsgen fleet into an unsharded (1) and
// a sharded (8) store and returns both plus the ids.
func fleetStores(t *testing.T) (uni, sharded *Store, ids []string, span float64) {
	t.Helper()
	g := gpsgen.New(42, gpsgen.Config{})
	fleet := g.Fleet(24, 5000, 900)
	uni = New(Options{Shards: 1, Metrics: metrics.NewRegistry()})
	sharded = New(Options{Shards: 8, Metrics: metrics.NewRegistry()})
	for i, p := range fleet {
		id := fmt.Sprintf("veh-%02d", i)
		ids = append(ids, id)
		for _, s := range p {
			if err := uni.Append(id, s); err != nil {
				t.Fatalf("unsharded append: %v", err)
			}
			if err := sharded.Append(id, s); err != nil {
				t.Fatalf("sharded append: %v", err)
			}
		}
		if end := p.EndTime(); end > span {
			span = end
		}
	}
	return uni, sharded, ids, span
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCrossShardQueriesMatchUnsharded is the golden test for the sharded
// read path: every cross-object operation over an 8-shard store must return
// exactly what the single-lock store returns for the same seeded fleet.
func TestCrossShardQueriesMatchUnsharded(t *testing.T) {
	uni, sharded, ids, span := fleetStores(t)

	if got, want := sharded.IDs(), uni.IDs(); !sameStrings(got, want) {
		t.Errorf("IDs: sharded %v != unsharded %v", got, want)
	}

	rects := []geo.Rect{
		{Min: geo.Pt(-3000, -3000), Max: geo.Pt(3000, 3000)},
		{Min: geo.Pt(0, 0), Max: geo.Pt(8000, 8000)},
		{Min: geo.Pt(-50000, -50000), Max: geo.Pt(50000, 50000)},
		{Min: geo.Pt(90000, 90000), Max: geo.Pt(90001, 90001)}, // empty
	}
	windows := [][2]float64{{0, span}, {span / 4, span / 2}, {span, span + 100}}
	for _, rect := range rects {
		for _, w := range windows {
			if got, want := sharded.Query(rect, w[0], w[1]), uni.Query(rect, w[0], w[1]); !sameStrings(got, want) {
				t.Errorf("Query(%v, %v, %v): sharded %v != unsharded %v", rect, w[0], w[1], got, want)
			}
			if got, want := sharded.QueryWithTolerance(rect, w[0], w[1], 250), uni.QueryWithTolerance(rect, w[0], w[1], 250); !sameStrings(got, want) {
				t.Errorf("QueryWithTolerance(%v, %v, %v): sharded %v != unsharded %v", rect, w[0], w[1], got, want)
			}
		}
	}

	for _, q := range []geo.Point{geo.Pt(0, 0), geo.Pt(2500, -1800), geo.Pt(-4000, 4000)} {
		for _, k := range []int{1, 3, 24} {
			got := sharded.Nearest(q, span/3, k)
			want := uni.Nearest(q, span/3, k)
			if len(got) != len(want) {
				t.Fatalf("Nearest(%v, k=%d): %d results != %d", q, k, len(got), len(want))
			}
			for i := range got {
				if got[i].ID != want[i].ID || math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
					t.Errorf("Nearest(%v, k=%d)[%d]: sharded %+v != unsharded %+v", q, k, i, got[i], want[i])
				}
			}
		}
	}

	gotStats, wantStats := sharded.Stats(), uni.Stats()
	if gotStats.Objects != wantStats.Objects ||
		gotStats.RawPoints != wantStats.RawPoints ||
		gotStats.RetainedPoints != wantStats.RetainedPoints {
		t.Errorf("Stats: sharded %+v != unsharded %+v", gotStats, wantStats)
	}
	for _, id := range ids {
		if gotStats.PointsPerObject[id] != wantStats.PointsPerObject[id] {
			t.Errorf("Stats.PointsPerObject[%s]: %d != %d", id, gotStats.PointsPerObject[id], wantStats.PointsPerObject[id])
		}
		gs, okG := sharded.Snapshot(id)
		ws, okW := uni.Snapshot(id)
		if okG != okW || gs.Len() != ws.Len() {
			t.Errorf("Snapshot(%s): sharded len %d (%v) != unsharded len %d (%v)", id, gs.Len(), okG, ws.Len(), okW)
		}
	}
}

// TestEvictionUnderConcurrentAppends hammers one sharded store with
// concurrent appenders and a concurrent evictor, then checks the invariants
// that survive any interleaving: nothing older than the final horizon
// remains, every sample at/after the horizon that was appended before the
// final eviction's shard pass is present, and Stats sums match a per-object
// recount. Run with -race to make this a shard-locking test too.
func TestEvictionUnderConcurrentAppends(t *testing.T) {
	st := New(Options{Shards: 8, Metrics: metrics.NewRegistry()})
	const (
		objects   = 16
		perObject = 400
		horizon   = 200.0
	)

	var wg sync.WaitGroup
	for o := 0; o < objects; o++ {
		wg.Add(1)
		go func(o int) {
			defer wg.Done()
			id := fmt.Sprintf("ev-%02d", o)
			for i := 0; i < perObject; i++ {
				s := trajectory.S(float64(i), float64(o*1000+i), float64(o))
				if _, err := st.AppendObserved(id, s); err != nil {
					t.Errorf("append %s: %v", id, err)
					return
				}
			}
		}(o)
	}
	evictDone := make(chan int)
	go func() {
		n := 0
		for i := 0; i < 20; i++ {
			n += st.EvictBefore(horizon)
		}
		evictDone <- n
	}()
	wg.Wait()
	<-evictDone

	// Quiescent final eviction: afterwards the store must hold exactly the
	// samples with T >= horizon, for every object.
	st.EvictBefore(horizon)
	stats := st.Stats()
	if stats.Objects != objects {
		t.Fatalf("Objects = %d, want %d", stats.Objects, objects)
	}
	wantPer := int(perObject - horizon)
	total := 0
	for o := 0; o < objects; o++ {
		id := fmt.Sprintf("ev-%02d", o)
		p, ok := st.Retained(id)
		if !ok {
			t.Fatalf("Retained(%s): missing", id)
		}
		if p.Len() != wantPer {
			t.Errorf("Retained(%s) = %d samples, want %d", id, p.Len(), wantPer)
		}
		for _, s := range p {
			if s.T < horizon {
				t.Fatalf("%s retains sample at T=%v < horizon %v", id, s.T, horizon)
			}
		}
		if stats.PointsPerObject[id] != p.Len() {
			t.Errorf("Stats.PointsPerObject[%s] = %d, recount %d", id, stats.PointsPerObject[id], p.Len())
		}
		total += p.Len()
	}
	if stats.RetainedPoints != total {
		t.Errorf("Stats.RetainedPoints = %d, recount %d", stats.RetainedPoints, total)
	}

	// The index must agree with the survivors too.
	got := st.Query(geo.Rect{Min: geo.Pt(-1, -1), Max: geo.Pt(1e6, objects)}, 0, horizon-1)
	if len(got) != 0 {
		t.Errorf("Query before horizon returned %v after eviction", got)
	}
	got = st.Query(geo.Rect{Min: geo.Pt(-1, -1), Max: geo.Pt(1e6, objects)}, horizon, perObject)
	if len(got) != objects {
		t.Errorf("Query after horizon returned %d ids, want %d", len(got), objects)
	}
}

// TestShardedStoreRaceHammer drives appends, reads, cross-shard queries and
// evictions concurrently. It asserts nothing beyond "no race, no panic,
// appends all land" — the interleaving guarantees are covered above; this
// test exists for the -race detector.
func TestShardedStoreRaceHammer(t *testing.T) {
	st := New(Options{Shards: 4, Metrics: metrics.NewRegistry()})
	const writers = 8
	var writeWG, readWG sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			id := fmt.Sprintf("rh-%d", w)
			for i := 0; i < 300; i++ {
				if _, err := st.AppendObserved(id, trajectory.S(float64(i), float64(i), float64(w))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			rect := geo.Rect{Min: geo.Pt(-10, -10), Max: geo.Pt(400, 10)}
			for {
				select {
				case <-stop:
					return
				default:
				}
				st.IDs()
				st.Query(rect, 0, 300)
				st.Stats()
				st.Nearest(geo.Pt(100, 3), 150, 2)
				st.EvictBefore(50)
			}
		}()
	}
	writeWG.Wait()
	close(stop)
	readWG.Wait()

	stats := st.Stats()
	if stats.Objects != writers {
		t.Fatalf("Objects = %d, want %d", stats.Objects, writers)
	}
}
