package mapmatch

import (
	"fmt"
	"math"

	"repro/internal/roadnet"
	"repro/internal/trajectory"
)

// Matcher is a fixed-lag online map matcher: samples are pushed as they
// arrive and matches are emitted once they are lag samples old, decoded
// from the Viterbi trellis accumulated so far. The fixed lag bounds both
// memory and latency; matches within the lag window may still be revised by
// future evidence, matches emitted are final.
//
// Emission and transition models are those of Snap. Matcher is not safe for
// concurrent use.
type Matcher struct {
	g    *roadnet.Graph
	opts Options
	lag  int

	// trellis columns for the buffered samples.
	samples []trajectory.Sample
	cands   [][]roadnet.Projection
	prob    []float64
	back    [][]int
	out     []Match
}

// NewMatcher returns an online matcher emitting matches lag samples behind
// the newest input (lag ≥ 1).
func NewMatcher(g *roadnet.Graph, lag int, opts Options) (*Matcher, error) {
	opts = opts.withDefaults()
	if lag < 1 {
		return nil, fmt.Errorf("mapmatch: lag %d < 1", lag)
	}
	if opts.SearchRadius < 0 || opts.NoiseSigma <= 0 || opts.Beta <= 0 || opts.MaxCandidates < 1 {
		return nil, fmt.Errorf("mapmatch: invalid options %+v", opts)
	}
	return &Matcher{g: g, opts: opts, lag: lag}, nil
}

// Push feeds one sample and returns any matches that became final (samples
// now more than the lag behind). Samples must arrive in increasing time
// order; a sample with no nearby road or no connected path fails.
func (m *Matcher) Push(s trajectory.Sample) ([]Match, error) {
	if n := len(m.samples); n > 0 && s.T <= m.samples[n-1].T {
		return nil, fmt.Errorf("mapmatch: sample out of order (t=%v)", s.T)
	}
	cs := m.g.NearbyEdges(s.Pos(), m.opts.SearchRadius)
	if len(cs) == 0 {
		return nil, fmt.Errorf("mapmatch: no road within %.0f m of %v", m.opts.SearchRadius, s.Pos())
	}
	if len(cs) > m.opts.MaxCandidates {
		cs = cs[:m.opts.MaxCandidates]
	}

	emission := func(pr roadnet.Projection) float64 {
		z := pr.Dist / m.opts.NoiseSigma
		return -0.5 * z * z
	}

	if len(m.samples) == 0 {
		m.samples = append(m.samples, s)
		m.cands = append(m.cands, cs)
		m.prob = make([]float64, len(cs))
		for k, c := range cs {
			m.prob[k] = emission(c)
		}
		m.back = append(m.back, nil)
		return nil, nil
	}

	prev := m.samples[len(m.samples)-1]
	straight := prev.Pos().Dist(s.Pos())
	prune := straight + 4*(m.opts.SearchRadius+m.opts.Beta)
	next := make([]float64, len(cs))
	backRow := make([]int, len(cs))
	prevCands := m.cands[len(m.cands)-1]
	alive := false
	for k, c := range cs {
		best := math.Inf(-1)
		arg := -1
		for j, pc := range prevCands {
			if math.IsInf(m.prob[j], -1) {
				continue
			}
			road := m.g.NetworkDist(pc, c, prune)
			if math.IsInf(road, 1) {
				continue
			}
			if v := m.prob[j] - math.Abs(road-straight)/m.opts.Beta; v > best {
				best, arg = v, j
			}
		}
		if arg < 0 {
			next[k] = math.Inf(-1)
			backRow[k] = -1
			continue
		}
		next[k] = best + emission(c)
		backRow[k] = arg
		alive = true
	}
	if !alive {
		return nil, fmt.Errorf("mapmatch: no connected road path to %v", s.Pos())
	}
	m.samples = append(m.samples, s)
	m.cands = append(m.cands, cs)
	m.prob = next
	m.back = append(m.back, backRow)

	m.out = m.out[:0]
	for len(m.samples) > m.lag {
		m.out = append(m.out, m.emitOldest())
	}
	return m.out, nil
}

// Flush decodes and returns the matches still buffered, resetting the
// matcher for a new stream.
func (m *Matcher) Flush() []Match {
	var out []Match
	for len(m.samples) > 0 {
		out = append(out, m.emitOldest())
	}
	m.prob = nil
	return out
}

// emitOldest decodes the current best path, emits its first element, and
// re-roots the trellis at the second column.
func (m *Matcher) emitOldest() Match {
	// Backtrack from the best current state to the oldest column.
	bestK := 0
	for k := range m.prob {
		if m.prob[k] > m.prob[bestK] {
			bestK = k
		}
	}
	k := bestK
	for i := len(m.back) - 1; i >= 1; i-- {
		k = m.back[i][k]
	}
	match := Match{Proj: m.cands[0][k]}

	if len(m.samples) == 1 {
		m.samples = nil
		m.cands = nil
		m.back = nil
		return match
	}
	// Re-root: condition the second column on the emitted choice by
	// dropping first-column alternatives. Probabilities of the remaining
	// columns are unchanged (a shared additive constant is irrelevant to
	// argmax); back pointers of column 1 now all point at the emitted
	// state, which column re-indexing removes.
	m.samples = m.samples[1:]
	m.cands = m.cands[1:]
	m.back = m.back[1:]
	if len(m.back) > 0 {
		m.back[0] = nil
	}
	return match
}
