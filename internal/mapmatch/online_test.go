package mapmatch

import (
	"math/rand"
	"testing"

	"repro/internal/roadnet"
	"repro/internal/trajectory"
)

// With a lag larger than the stream, the online matcher decodes the same
// trellis as batch Snap and must produce identical matches.
func TestOnlineMatchesBatchWithLargeLag(t *testing.T) {
	g := roadnet.Grid(11, 11, 100)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 5; trial++ {
		noisy, _ := drive(rng, 8)
		batch, _, err := Snap(g, noisy, Options{NoiseSigma: 8})
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewMatcher(g, 1000, Options{NoiseSigma: 8})
		if err != nil {
			t.Fatal(err)
		}
		var got []Match
		for _, s := range noisy {
			emitted, err := m.Push(s)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, emitted...)
		}
		got = append(got, m.Flush()...)
		if len(got) != len(batch) {
			t.Fatalf("trial %d: online %d matches, batch %d", trial, len(got), len(batch))
		}
		for i := range batch {
			if got[i].Proj.Point != batch[i].Proj.Point {
				t.Fatalf("trial %d: match %d differs: %v vs %v",
					trial, i, got[i].Proj.Point, batch[i].Proj.Point)
			}
		}
	}
}

// With a small lag, emissions arrive incrementally and stay near the truth.
func TestOnlineFixedLag(t *testing.T) {
	g := roadnet.Grid(11, 11, 100)
	rng := rand.New(rand.NewSource(5))
	noisy, truth := drive(rng, 8)

	m, err := NewMatcher(g, 3, Options{NoiseSigma: 8})
	if err != nil {
		t.Fatal(err)
	}
	var got []Match
	for i, s := range noisy {
		emitted, err := m.Push(s)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, emitted...)
		// Emissions trail the input by exactly the lag.
		if want := i + 1 - 3; want > 0 && len(got) != want {
			t.Fatalf("after %d pushes: %d emitted, want %d", i+1, len(got), want)
		}
	}
	got = append(got, m.Flush()...)
	if len(got) != noisy.Len() {
		t.Fatalf("total %d matches, want %d", len(got), noisy.Len())
	}
	var worst float64
	for i, mt := range got {
		if d := mt.Proj.Point.Dist(truth[i].Pos()); d > worst {
			worst = d
		}
	}
	if worst > 40 {
		t.Errorf("worst online deviation %.1f m", worst)
	}
}

func TestOnlineErrors(t *testing.T) {
	g := roadnet.Grid(5, 5, 100)
	if _, err := NewMatcher(g, 0, Options{}); err == nil {
		t.Error("lag 0 accepted")
	}
	if _, err := NewMatcher(g, 1, Options{NoiseSigma: -1}); err == nil {
		t.Error("bad options accepted")
	}
	m, err := NewMatcher(g, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Push(trajectory.S(0, 1e6, 1e6)); err == nil {
		t.Error("off-network sample accepted")
	}
	if _, err := m.Push(trajectory.S(0, 50, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Push(trajectory.S(0, 60, 0)); err == nil {
		t.Error("out-of-order sample accepted")
	}
	// Reusable after Flush.
	_ = m.Flush()
	if _, err := m.Push(trajectory.S(0, 50, 0)); err != nil {
		t.Errorf("matcher unusable after Flush: %v", err)
	}
}
