package mapmatch

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/compress"
	"repro/internal/geo"
	"repro/internal/roadnet"
	"repro/internal/sed"
	"repro/internal/trajectory"
)

// drive synthesizes a trip along an L-shaped route on the grid: east along
// y=0 to x=500, then north along x=500, at 10 m/s with one fix per 10 s,
// perturbed by Gaussian noise.
func drive(rng *rand.Rand, sigma float64) (noisy, truth trajectory.Trajectory) {
	pos := func(dist float64) geo.Point {
		if dist <= 500 {
			return geo.Pt(dist, 0)
		}
		return geo.Pt(500, dist-500)
	}
	for i := 0; i <= 10; i++ {
		t := float64(i * 10)
		p := pos(float64(i) * 100)
		truth = append(truth, trajectory.S(t, p.X, p.Y))
		noisy = append(noisy, trajectory.S(t,
			p.X+rng.NormFloat64()*sigma,
			p.Y+rng.NormFloat64()*sigma))
	}
	return noisy, truth
}

func TestSnapRecoversRoute(t *testing.T) {
	g := roadnet.Grid(11, 11, 100)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		noisy, truth := drive(rng, 8)
		matches, snapped, err := Snap(g, noisy, Options{NoiseSigma: 8})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(matches) != noisy.Len() || snapped.Len() != noisy.Len() {
			t.Fatalf("trial %d: result sizes %d/%d", trial, len(matches), snapped.Len())
		}
		if err := snapped.Validate(); err != nil {
			t.Fatalf("trial %d: snapped invalid: %v", trial, err)
		}
		// Matching removes lateral noise; longitudinal noise (along the
		// road) remains, so compare against the noise scale: mean deviation
		// near σ, worst within a few σ.
		var sum, worst float64
		for i := range snapped {
			d := snapped[i].Pos().Dist(truth[i].Pos())
			sum += d
			if d > worst {
				worst = d
			}
		}
		if mean := sum / float64(snapped.Len()); mean > 12 {
			t.Errorf("trial %d: mean matched deviation %.1f m from truth", trial, mean)
		}
		if worst > 40 {
			t.Errorf("trial %d: worst matched deviation %.1f m from truth", trial, worst)
		}
	}
}

// Matched positions lie exactly on roads: either x or y is a multiple of
// the 100 m block.
func TestSnapPositionsOnRoads(t *testing.T) {
	g := roadnet.Grid(11, 11, 100)
	rng := rand.New(rand.NewSource(2))
	noisy, _ := drive(rng, 8)
	_, snapped, err := Snap(g, noisy, Options{NoiseSigma: 8})
	if err != nil {
		t.Fatal(err)
	}
	onGrid := func(v float64) bool {
		_, frac := math.Modf(v / 100)
		return frac < 1e-9 || frac > 1-1e-9
	}
	for i, s := range snapped {
		if !onGrid(s.X) && !onGrid(s.Y) {
			t.Errorf("sample %d at %v is off-road", i, s.Pos())
		}
	}
}

// The HMM prefers the coherent route over per-point nearest roads: a
// glitched fix slightly closer to a parallel road must be kept on the
// travelled road, because switching roads implies an implausible detour via
// the distant connectors.
func TestSnapUsesContinuity(t *testing.T) {
	// Two parallel 600 m roads at y=0 and y=100, connected only at their
	// ends.
	g := roadnet.NewGraph()
	b0 := g.AddNode(geo.Pt(0, 0))
	b1 := g.AddNode(geo.Pt(600, 0))
	t0 := g.AddNode(geo.Pt(0, 100))
	t1 := g.AddNode(geo.Pt(600, 100))
	g.AddEdge(b0, b1)
	g.AddEdge(t0, t1)
	g.AddEdge(b0, t0)
	g.AddEdge(b1, t1)
	g.Build()

	// Eastbound along y=0; the middle fix glitches to y=55 — closer to the
	// top road (45 m) than to the travelled one (55 m).
	var p trajectory.Trajectory
	for i := 0; i <= 6; i++ {
		y := 0.0
		if i == 3 {
			y = 55
		}
		p = append(p, trajectory.S(float64(i*10), float64(i*100), y))
	}
	_, snapped, err := Snap(g, p, Options{NoiseSigma: 30, SearchRadius: 120})
	if err != nil {
		t.Fatal(err)
	}
	if snapped[3].Y != 0 {
		t.Errorf("glitched fix snapped to y=%v, want the continuous road y=0", snapped[3].Y)
	}
}

func TestSnapErrors(t *testing.T) {
	g := roadnet.Grid(5, 5, 100)
	// Fix far away from any road.
	far := trajectory.Trajectory{trajectory.S(0, 10000, 10000)}
	if _, _, err := Snap(g, far, Options{}); err == nil {
		t.Error("off-network fix accepted")
	}
	// Disconnected graph: consecutive fixes on different components.
	dg := roadnet.NewGraph()
	a0 := dg.AddNode(geo.Pt(0, 0))
	a1 := dg.AddNode(geo.Pt(100, 0))
	b0 := dg.AddNode(geo.Pt(5000, 5000))
	b1 := dg.AddNode(geo.Pt(5100, 5000))
	dg.AddEdge(a0, a1)
	dg.AddEdge(b0, b1)
	dg.Build()
	jump := trajectory.MustNew([]trajectory.Sample{
		trajectory.S(0, 50, 0), trajectory.S(10, 5050, 5000),
	})
	if _, _, err := Snap(dg, jump, Options{}); err == nil {
		t.Error("disconnected jump accepted")
	}
	// Empty trajectory: no-op.
	if m, s, err := Snap(g, nil, Options{}); err != nil || m != nil || s != nil {
		t.Errorf("empty input: %v %v %v", m, s, err)
	}
	// Invalid options.
	if _, _, err := Snap(g, far, Options{NoiseSigma: -1}); err == nil {
		t.Error("negative sigma accepted")
	}
}

// Map matching before compression removes lateral noise, letting TD-TR
// discard more points at the same synchronized error budget — the pipeline
// composition the package doc advertises.
func TestSnapImprovesCompression(t *testing.T) {
	g := roadnet.Grid(11, 11, 100)
	rng := rand.New(rand.NewSource(3))
	var rawKept, snapKept int
	for trial := 0; trial < 10; trial++ {
		noisy, _ := drive(rng, 8)
		_, snapped, err := Snap(g, noisy, Options{NoiseSigma: 8})
		if err != nil {
			t.Fatal(err)
		}
		alg := compress.TDTR{Threshold: 15}
		rawKept += alg.Compress(noisy).Len()
		snapKept += alg.Compress(snapped).Len()
		// Sanity: the compressed snapped trajectory stays within budget.
		if e, err := sed.MaxError(snapped, alg.Compress(snapped)); err != nil || e > 15+1e-9 {
			t.Fatalf("budget violated: %v, %v", e, err)
		}
	}
	if snapKept >= rawKept {
		t.Errorf("snapping did not improve compression: %d vs %d points kept", snapKept, rawKept)
	}
}

func BenchmarkSnap(b *testing.B) {
	g := roadnet.Grid(31, 31, 100)
	rng := rand.New(rand.NewSource(9))
	noisy, _ := drive(rng, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Snap(g, noisy, Options{NoiseSigma: 8}); err != nil {
			b.Fatal(err)
		}
	}
}
