// Package mapmatch snaps noisy GPS trajectories onto a road network with
// the standard hidden-Markov-model formulation (Newson & Krumm style):
// candidate road projections are the hidden states, GPS noise gives the
// emission probabilities, and agreement between along-road distance and
// straight-line displacement gives the transition probabilities; Viterbi
// decoding picks the most likely road path.
//
// Map matching composes naturally with the paper's pipeline: matching
// before compression removes lateral GPS noise (positions lie exactly on
// roads), which lets the time-ratio algorithms compress harder at the same
// synchronized error budget.
package mapmatch

import (
	"fmt"
	"math"

	"repro/internal/roadnet"
	"repro/internal/trajectory"
)

// Options tunes the HMM.
type Options struct {
	// SearchRadius bounds the candidate projections per fix, metres.
	// Zero selects 80 m.
	SearchRadius float64
	// NoiseSigma is the expected GPS noise standard deviation, metres.
	// Zero selects 10 m.
	NoiseSigma float64
	// Beta scales the transition penalty on the difference between
	// along-road and straight-line distance, metres. Zero selects 30 m.
	Beta float64
	// MaxCandidates caps the candidate states per fix. Zero selects 8.
	MaxCandidates int
}

func (o Options) withDefaults() Options {
	//lint:allow floatcmp zero-value option selects the default
	if o.SearchRadius == 0 {
		o.SearchRadius = 80
	}
	//lint:allow floatcmp zero-value option selects the default
	if o.NoiseSigma == 0 {
		o.NoiseSigma = 10
	}
	//lint:allow floatcmp zero-value option selects the default
	if o.Beta == 0 {
		o.Beta = 30
	}
	if o.MaxCandidates == 0 {
		o.MaxCandidates = 8
	}
	return o
}

// Match is the result for one input sample.
type Match struct {
	// Proj is the chosen road position.
	Proj roadnet.Projection
}

// Snap map-matches a trajectory and returns both the per-sample matches and
// the snapped trajectory (original timestamps, positions moved onto the
// matched roads). Samples with no road within the search radius cause an
// error, as does a trajectory whose candidates are all mutually unreachable.
func Snap(g *roadnet.Graph, p trajectory.Trajectory, opts Options) ([]Match, trajectory.Trajectory, error) {
	opts = opts.withDefaults()
	if opts.SearchRadius < 0 || opts.NoiseSigma <= 0 || opts.Beta <= 0 || opts.MaxCandidates < 1 {
		return nil, nil, fmt.Errorf("mapmatch: invalid options %+v", opts)
	}
	n := p.Len()
	if n == 0 {
		return nil, nil, nil
	}

	// Candidate states per sample.
	cands := make([][]roadnet.Projection, n)
	for i, s := range p {
		cs := g.NearbyEdges(s.Pos(), opts.SearchRadius)
		if len(cs) == 0 {
			return nil, nil, fmt.Errorf("mapmatch: no road within %.0f m of sample %d at %v", opts.SearchRadius, i, s.Pos())
		}
		if len(cs) > opts.MaxCandidates {
			cs = cs[:opts.MaxCandidates]
		}
		cands[i] = cs
	}

	// Viterbi in log space.
	emission := func(pr roadnet.Projection) float64 {
		z := pr.Dist / opts.NoiseSigma
		return -0.5 * z * z
	}
	prob := make([]float64, len(cands[0]))
	back := make([][]int, n)
	for k, c := range cands[0] {
		prob[k] = emission(c)
	}
	for i := 1; i < n; i++ {
		straight := p[i-1].Pos().Dist(p[i].Pos())
		// Network searches are pruned generously beyond the plausible
		// detour scale.
		prune := straight + 4*(opts.SearchRadius+opts.Beta)
		next := make([]float64, len(cands[i]))
		back[i] = make([]int, len(cands[i]))
		for k, c := range cands[i] {
			best := math.Inf(-1)
			arg := -1
			for j, pc := range cands[i-1] {
				if math.IsInf(prob[j], -1) {
					continue
				}
				road := g.NetworkDist(pc, c, prune)
				if math.IsInf(road, 1) {
					continue
				}
				trans := -math.Abs(road-straight) / opts.Beta
				if v := prob[j] + trans; v > best {
					best, arg = v, j
				}
			}
			if arg < 0 {
				next[k] = math.Inf(-1)
				back[i][k] = -1
				continue
			}
			next[k] = best + emission(c)
			back[i][k] = arg
		}
		prob = next
		alive := false
		for _, v := range prob {
			if !math.IsInf(v, -1) {
				alive = true
				break
			}
		}
		if !alive {
			return nil, nil, fmt.Errorf("mapmatch: no connected road path through sample %d", i)
		}
	}

	// Backtrack.
	bestK := 0
	for k := range prob {
		if prob[k] > prob[bestK] {
			bestK = k
		}
	}
	choice := make([]int, n)
	choice[n-1] = bestK
	for i := n - 1; i > 0; i-- {
		choice[i-1] = back[i][choice[i]]
	}

	matches := make([]Match, n)
	snapped := make(trajectory.Trajectory, n)
	for i := range matches {
		pr := cands[i][choice[i]]
		matches[i] = Match{Proj: pr}
		snapped[i] = trajectory.Sample{T: p[i].T, X: pr.Point.X, Y: pr.Point.Y}
	}
	return matches, snapped, nil
}
