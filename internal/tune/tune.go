// Package tune automates threshold selection. The paper closes on exactly
// this difficulty: "Obtained results strongly depend on the chosen threshold
// values. Choosing a proper threshold is not easy and is
// application-dependent." (§5). Given an application-level target — a
// required compression rate, or a tolerable synchronized error — tune
// searches the threshold that meets it on sample data.
//
// Compression rate and committed error both grow (near-)monotonically with
// the distance threshold (the paper's observation on Fig. 7), so bisection
// converges; small non-monotonicities (the paper sees them for NOPW) only
// shift the result by a threshold step, which the achieved-value return
// makes visible.
package tune

import (
	"fmt"

	"repro/internal/compress"
	"repro/internal/sed"
	"repro/internal/trajectory"
)

// Factory builds an algorithm for a candidate distance threshold.
type Factory func(threshold float64) compress.Algorithm

// Result reports a tuned threshold and what it achieves on the sample data.
type Result struct {
	Threshold      float64
	CompressionPct float64 // mean % of points removed
	AvgError       float64 // mean synchronized error α, metres
}

const bisectionSteps = 40

// ForCompression returns the smallest threshold in [lo, hi] whose mean
// compression rate over the sample trajectories reaches targetPct. It
// returns an error if even hi cannot reach the target or the inputs are
// invalid.
func ForCompression(f Factory, sample []trajectory.Trajectory, targetPct, lo, hi float64) (Result, error) {
	if err := validate(sample, lo, hi); err != nil {
		return Result{}, err
	}
	if targetPct < 0 || targetPct > 100 {
		return Result{}, fmt.Errorf("tune: target compression %v%% outside [0, 100]", targetPct)
	}
	if r := measure(f, sample, hi); r.CompressionPct < targetPct {
		return Result{}, fmt.Errorf("tune: threshold %g reaches only %.1f%% compression, below target %.1f%%",
			hi, r.CompressionPct, targetPct)
	}
	for i := 0; i < bisectionSteps; i++ {
		mid := (lo + hi) / 2
		if measure(f, sample, mid).CompressionPct >= targetPct {
			hi = mid
		} else {
			lo = mid
		}
	}
	return measure(f, sample, hi), nil
}

// ForError returns the largest threshold in [lo, hi] whose mean
// synchronized error over the sample trajectories stays within maxErr
// metres (maximizing compression subject to the error budget). It returns
// an error if even lo exceeds the budget.
func ForError(f Factory, sample []trajectory.Trajectory, maxErr, lo, hi float64) (Result, error) {
	if err := validate(sample, lo, hi); err != nil {
		return Result{}, err
	}
	if maxErr < 0 {
		return Result{}, fmt.Errorf("tune: negative error budget %v", maxErr)
	}
	if r := measure(f, sample, lo); r.AvgError > maxErr {
		return Result{}, fmt.Errorf("tune: threshold %g already commits %.1f m error, above budget %.1f m",
			lo, r.AvgError, maxErr)
	}
	for i := 0; i < bisectionSteps; i++ {
		mid := (lo + hi) / 2
		if measure(f, sample, mid).AvgError <= maxErr {
			lo = mid
		} else {
			hi = mid
		}
	}
	return measure(f, sample, lo), nil
}

func validate(sample []trajectory.Trajectory, lo, hi float64) error {
	if len(sample) == 0 {
		return fmt.Errorf("tune: empty sample")
	}
	for i, p := range sample {
		if p.Len() < 2 {
			return fmt.Errorf("tune: sample trajectory %d has %d points, need ≥ 2", i, p.Len())
		}
	}
	if !(lo >= 0) || !(hi > lo) {
		return fmt.Errorf("tune: invalid threshold bounds [%v, %v]", lo, hi)
	}
	return nil
}

// measure evaluates the algorithm at one threshold over the sample.
func measure(f Factory, sample []trajectory.Trajectory, threshold float64) Result {
	r := Result{Threshold: threshold}
	for _, p := range sample {
		a := f(threshold).Compress(p)
		r.CompressionPct += compress.Rate(p.Len(), a.Len())
		e, err := sed.AvgError(p, a)
		if err != nil {
			// Sample validated to ≥ 2 points and compression preserves
			// endpoints, so this indicates a broken Factory.
			panic(fmt.Sprintf("tune: %v", err))
		}
		r.AvgError += e
	}
	n := float64(len(sample))
	r.CompressionPct /= n
	r.AvgError /= n
	return r
}
