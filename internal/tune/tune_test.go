package tune

import (
	"testing"

	"repro/internal/compress"
	"repro/internal/gpsgen"
	"repro/internal/trajectory"
)

func sample() []trajectory.Trajectory {
	g := gpsgen.New(31, gpsgen.Config{})
	return []trajectory.Trajectory{
		g.Trip(gpsgen.Urban, 1200),
		g.Trip(gpsgen.Mixed, 1500),
		g.Trip(gpsgen.Rural, 900),
	}
}

func tdtr(eps float64) compress.Algorithm { return compress.TDTR{Threshold: eps} }

func TestForCompression(t *testing.T) {
	ps := sample()
	const target = 70.0
	r, err := ForCompression(tdtr, ps, target, 0, 500)
	if err != nil {
		t.Fatal(err)
	}
	if r.CompressionPct < target {
		t.Errorf("achieved %.1f%%, below target %.0f%%", r.CompressionPct, target)
	}
	// The tuned threshold should be near-minimal: backing off 20% should
	// fall below target.
	below := measure(tdtr, ps, r.Threshold*0.8)
	if below.CompressionPct >= target {
		t.Errorf("threshold %.1f not near-minimal: 0.8× still achieves %.1f%%",
			r.Threshold, below.CompressionPct)
	}
}

func TestForCompressionUnreachable(t *testing.T) {
	if _, err := ForCompression(tdtr, sample(), 99.9, 0, 5); err == nil {
		t.Error("unreachable target accepted")
	}
}

func TestForError(t *testing.T) {
	ps := sample()
	const budget = 10.0
	r, err := ForError(tdtr, ps, budget, 0.1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if r.AvgError > budget {
		t.Errorf("achieved error %.2f m above budget %.0f m", r.AvgError, budget)
	}
	// TD-TR guarantees error ≤ threshold, so the tuned threshold must be at
	// least the budget (mean error is far below the max bound).
	if r.Threshold < budget {
		t.Errorf("tuned threshold %.1f below the error budget %.0f", r.Threshold, budget)
	}
	// The tuned threshold should be near-maximal within the budget.
	above := measure(tdtr, ps, r.Threshold*1.3)
	if above.AvgError <= budget {
		t.Errorf("threshold %.1f not near-maximal: 1.3× still within budget (%.2f m)",
			r.Threshold, above.AvgError)
	}
}

func TestForErrorUnreachable(t *testing.T) {
	// Even the smallest allowed threshold commits noise-level error; an
	// absurd budget of 1 µm is unreachable.
	if _, err := ForError(tdtr, sample(), 1e-6, 50, 100); err == nil {
		t.Error("unreachable budget accepted")
	}
}

func TestValidation(t *testing.T) {
	ps := sample()
	if _, err := ForCompression(tdtr, nil, 50, 0, 100); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := ForCompression(tdtr, ps, -5, 0, 100); err == nil {
		t.Error("negative target accepted")
	}
	if _, err := ForCompression(tdtr, ps, 50, 100, 100); err == nil {
		t.Error("degenerate bounds accepted")
	}
	if _, err := ForError(tdtr, ps, -1, 0, 100); err == nil {
		t.Error("negative budget accepted")
	}
	short := []trajectory.Trajectory{{trajectory.S(0, 0, 0)}}
	if _, err := ForError(tdtr, short, 10, 0, 100); err == nil {
		t.Error("degenerate sample accepted")
	}
}

// Tuning also works for the opening-window family.
func TestForCompressionOPWSP(t *testing.T) {
	f := func(eps float64) compress.Algorithm {
		return compress.OPWSP{DistThreshold: eps, SpeedThreshold: 5}
	}
	r, err := ForCompression(f, sample(), 50, 0, 500)
	if err != nil {
		t.Fatal(err)
	}
	if r.CompressionPct < 50 {
		t.Errorf("achieved %.1f%%", r.CompressionPct)
	}
}
