package trajectory

import "testing"

// TestResampleEpochTimestamps is the regression test for float-accumulation
// time stepping: at t0 = 1.7e9 a float64 ulp is ≈ 2.4e-7 s, so the old
// `for t := t0; t < end; t += dt` loop drifts off the sampling grid.
//
//   - dt = 0.1 over 4 s: the accumulated loop variable under-shoots, so an
//     extra interior point squeezes in just before the end (42 samples
//     instead of 41) at t ≈ end − 3.8e-6.
//   - dt = 0.7 over 7 s: the counts agree but the interior timestamps sit
//     off the exact grid t0 + i·dt by several ulps.
func TestResampleEpochTimestamps(t *testing.T) {
	const t0 = 1.7e9
	p := MustNew([]Sample{S(t0, 0, 0), S(t0+4, 40, 0)})
	r := p.Resample(0.1)
	if len(r) != 41 {
		t.Fatalf("Resample(0.1) yields %d samples, want 41 (duplicate near-end sample from accumulated rounding?)", len(r))
	}
	for i, s := range r {
		if want := t0 + float64(i)*0.1; s.T != want {
			t.Errorf("sample %d at %.9f, want exactly %.9f (off-grid by %g)", i, s.T, want, s.T-want)
		}
	}

	p = MustNew([]Sample{S(t0, 0, 0), S(t0+7, 70, 0)})
	r = p.Resample(0.7)
	if len(r) != 11 {
		t.Fatalf("Resample(0.7) yields %d samples, want 11", len(r))
	}
	for i, s := range r {
		if want := t0 + float64(i)*0.7; s.T != want {
			t.Errorf("sample %d at %.9f, want exactly %.9f (off-grid by %g)", i, s.T, want, s.T-want)
		}
	}
	if r[len(r)-1].T != t0+7 {
		t.Errorf("final sample at %.9f, want the end instant exactly", r[len(r)-1].T)
	}
}
