package trajectory

import (
	"errors"
	"math"
	"testing"
)

func TestBuilderAppend(t *testing.T) {
	b := NewBuilder(4)
	if _, ok := b.Last(); ok {
		t.Error("empty builder has a Last sample")
	}
	for i := 0; i < 4; i++ {
		if err := b.AppendPoint(float64(i), float64(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	if b.Len() != 4 {
		t.Errorf("Len = %d", b.Len())
	}
	if last, ok := b.Last(); !ok || last.T != 3 {
		t.Errorf("Last = %v, %v", last, ok)
	}
	if err := b.Trajectory().Validate(); err != nil {
		t.Errorf("built trajectory invalid: %v", err)
	}
}

func TestBuilderRejectsBadSamples(t *testing.T) {
	var b Builder
	if err := b.AppendPoint(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendPoint(0, 1, 1); !errors.Is(err, ErrUnsorted) {
		t.Errorf("equal timestamp: got %v", err)
	}
	if err := b.AppendPoint(-1, 1, 1); !errors.Is(err, ErrUnsorted) {
		t.Errorf("decreasing timestamp: got %v", err)
	}
	if err := b.AppendPoint(1, math.Inf(1), 0); !errors.Is(err, ErrNotFinite) {
		t.Errorf("infinite coordinate: got %v", err)
	}
	if b.Len() != 1 {
		t.Errorf("rejected samples were stored, Len = %d", b.Len())
	}
}

func TestBuilderReset(t *testing.T) {
	var b Builder
	_ = b.AppendPoint(0, 0, 0)
	_ = b.AppendPoint(1, 1, 1)
	b.Reset()
	if b.Len() != 0 {
		t.Errorf("Len after Reset = %d", b.Len())
	}
	// After reset, earlier timestamps are acceptable again.
	if err := b.AppendPoint(-100, 0, 0); err != nil {
		t.Errorf("append after reset: %v", err)
	}
}

func TestStatsTable2Shape(t *testing.T) {
	// Two simple trajectories with known statistics.
	p1 := line(11)                     // 10 s, 100 m
	p2 := line(21).Shift(1000, 500, 0) // 20 s, 200 m
	ds := SummarizeDataset([]Trajectory{p1, p2})
	if ds.N != 2 {
		t.Fatalf("N = %d", ds.N)
	}
	if !almostEq(ds.Mean.Duration, 15, 1e-9) {
		t.Errorf("mean duration = %v", ds.Mean.Duration)
	}
	if !almostEq(ds.Mean.Length, 150, 1e-9) {
		t.Errorf("mean length = %v", ds.Mean.Length)
	}
	if !almostEq(ds.StdDev.Duration, 5, 1e-9) {
		t.Errorf("sd duration = %v", ds.StdDev.Duration)
	}
	if ds.Mean.NumPoints != 16 {
		t.Errorf("mean points = %d", ds.Mean.NumPoints)
	}
	if got := SummarizeDataset(nil); got.N != 0 {
		t.Errorf("empty dataset N = %d", got.N)
	}
}

func TestFormatDuration(t *testing.T) {
	tests := []struct {
		sec  float64
		want string
	}{
		{0, "00:00:00"},
		{61, "00:01:01"},
		{1936, "00:32:16"}, // the paper's Table 2 average
		{3661, "01:01:01"},
	}
	for _, tc := range tests {
		if got := FormatDuration(tc.sec); got != tc.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", tc.sec, got, tc.want)
		}
	}
}

func TestStatsString(t *testing.T) {
	s := Summarize(line(11))
	str := s.String()
	if str == "" {
		t.Error("empty Stats string")
	}
	// 10 m/s = 36 km/h should appear.
	if want := "36.00 km/h"; !contains(str, want) {
		t.Errorf("Stats string %q missing %q", str, want)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
