// Package trajectory defines the moving-point trajectory type used across
// the library: a finite time series of time-stamped planar positions,
// interpreted as a piecewise-linear path (the paper's IP ≅ seq (T × IL)).
//
// Time is in seconds (float64); positions are planar metres (see
// internal/geo). Timestamps must be strictly increasing.
package trajectory

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/geo"
)

// Sample is one time-stamped position: the paper's data point ⟨t, x, y⟩.
type Sample struct {
	T float64 // seconds
	X float64 // metres east
	Y float64 // metres north
}

// S is shorthand for Sample{t, x, y}.
func S(t, x, y float64) Sample { return Sample{T: t, X: x, Y: y} }

// Pos returns the spatial component of the sample.
func (s Sample) Pos() geo.Point { return geo.Point{X: s.X, Y: s.Y} }

// IsFinite reports whether all three components are finite.
func (s Sample) IsFinite() bool {
	return !math.IsNaN(s.T) && !math.IsInf(s.T, 0) && s.Pos().IsFinite()
}

// String implements fmt.Stringer.
func (s Sample) String() string {
	return fmt.Sprintf("⟨%.3f, %.3f, %.3f⟩", s.T, s.X, s.Y)
}

// Trajectory is a finite series of samples with strictly increasing
// timestamps, interpreted as a piecewise-linear path. The zero value is an
// empty trajectory.
//
// A Trajectory shares its backing array with the slice it was built from;
// treat trajectories as immutable once constructed and use Clone when a
// private copy is needed.
type Trajectory []Sample

// ErrUnsorted is reported by Validate for non-increasing timestamps.
var ErrUnsorted = errors.New("trajectory: timestamps not strictly increasing")

// ErrNotFinite is reported by Validate for NaN or infinite components.
var ErrNotFinite = errors.New("trajectory: non-finite sample component")

// New validates samples and returns them as a Trajectory.
// The samples slice is not copied.
func New(samples []Sample) (Trajectory, error) {
	p := Trajectory(samples)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustNew is New but panics on invalid input. Intended for tests and
// literals whose validity is guaranteed by construction.
func MustNew(samples []Sample) Trajectory {
	p, err := New(samples)
	if err != nil {
		panic(err)
	}
	return p
}

// Validate checks that all samples are finite and timestamps strictly
// increase.
func (p Trajectory) Validate() error {
	for i, s := range p {
		if !s.IsFinite() {
			return fmt.Errorf("%w: sample %d = %v", ErrNotFinite, i, s)
		}
		if i > 0 && s.T <= p[i-1].T {
			return fmt.Errorf("%w: sample %d (t=%v) after t=%v", ErrUnsorted, i, s.T, p[i-1].T)
		}
	}
	return nil
}

// Len returns the number of samples (the paper's len(p)).
func (p Trajectory) Len() int { return len(p) }

// Clone returns a deep copy.
func (p Trajectory) Clone() Trajectory {
	q := make(Trajectory, len(p))
	copy(q, p)
	return q
}

// StartTime returns the first timestamp. It panics on an empty trajectory.
func (p Trajectory) StartTime() float64 { return p[0].T }

// EndTime returns the last timestamp. It panics on an empty trajectory.
func (p Trajectory) EndTime() float64 { return p[len(p)-1].T }

// Duration returns the total time span in seconds; 0 for fewer than 2 samples.
func (p Trajectory) Duration() float64 {
	if len(p) < 2 {
		return 0
	}
	return p[len(p)-1].T - p[0].T
}

// Length returns the travelled path length in metres (sum of segment
// lengths); 0 for fewer than 2 samples.
func (p Trajectory) Length() float64 {
	var sum float64
	for i := 1; i < len(p); i++ {
		sum += p[i].Pos().Dist(p[i-1].Pos())
	}
	return sum
}

// Displacement returns the straight-line distance between the first and last
// positions; 0 for fewer than 2 samples.
func (p Trajectory) Displacement() float64 {
	if len(p) < 2 {
		return 0
	}
	return p[0].Pos().Dist(p[len(p)-1].Pos())
}

// AvgSpeed returns the mean travel speed in m/s (path length over duration);
// 0 when duration is 0.
func (p Trajectory) AvgSpeed() float64 {
	d := p.Duration()
	//lint:allow floatcmp degenerate-case guard: a validated trajectory has duration exactly 0 only when empty or single-sample
	if d == 0 {
		return 0
	}
	return p.Length() / d
}

// SegmentSpeed returns the derived speed of segment i (from sample i to
// sample i+1) in m/s, as used by the paper's speed-difference criterion.
// It panics if i is out of [0, Len()-2].
func (p Trajectory) SegmentSpeed(i int) float64 {
	a, b := p[i], p[i+1]
	return a.Pos().Dist(b.Pos()) / (b.T - a.T)
}

// Bounds returns the spatial bounding rectangle of all samples.
func (p Trajectory) Bounds() geo.Rect {
	r := geo.EmptyRect()
	for _, s := range p {
		r = r.Extend(s.Pos())
	}
	return r
}

// Segment returns segment i as a geo.Segment.
// It panics if i is out of [0, Len()-2].
func (p Trajectory) Segment(i int) geo.Segment {
	return geo.Seg(p[i].Pos(), p[i+1].Pos())
}

// SegmentIndexAt returns the index i of the segment containing time t, i.e.
// p[i].T ≤ t ≤ p[i+1].T, preferring the earliest such segment. The boolean is
// false if t is outside the trajectory's time span or the trajectory has
// fewer than 2 samples.
func (p Trajectory) SegmentIndexAt(t float64) (int, bool) {
	if len(p) < 2 || t < p[0].T || t > p[len(p)-1].T {
		return 0, false
	}
	// First index with p[i].T ≥ t; the earliest containing segment ends there
	// (or starts there when t is the very first timestamp).
	i := sort.Search(len(p), func(i int) bool { return p[i].T >= t })
	if i == 0 {
		return 0, true
	}
	return i - 1, true
}

// LocAt returns the interpolated position at time t (the paper's loc(p, t)):
// piecewise-linear interpolation between the samples bracketing t. The
// boolean is false if t is outside [StartTime, EndTime] or the trajectory has
// fewer than 2 samples; a single-sample trajectory answers only its own
// timestamp.
func (p Trajectory) LocAt(t float64) (geo.Point, bool) {
	//lint:allow floatcmp a single-sample trajectory answers only its exact timestamp
	if len(p) == 1 && t == p[0].T {
		return p[0].Pos(), true
	}
	i, ok := p.SegmentIndexAt(t)
	if !ok {
		return geo.Point{}, false
	}
	a, b := p[i], p[i+1]
	f := (t - a.T) / (b.T - a.T)
	return a.Pos().Lerp(b.Pos(), f), true
}

// SampleAt is LocAt packaged as a Sample.
func (p Trajectory) SampleAt(t float64) (Sample, bool) {
	pt, ok := p.LocAt(t)
	if !ok {
		return Sample{}, false
	}
	return Sample{T: t, X: pt.X, Y: pt.Y}, true
}

// Sub returns the subseries p[k..m] inclusive (the paper's p[k, m], with
// 0-based indices). The result shares backing storage with p.
// It panics if the indices are out of range or k > m.
func (p Trajectory) Sub(k, m int) Trajectory {
	if k < 0 || m >= len(p) || k > m {
		panic(fmt.Sprintf("trajectory: Sub(%d, %d) out of range for len %d", k, m, len(p)))
	}
	return p[k : m+1]
}

// TimeSlice returns the portion of the trajectory within [t0, t1], with
// interpolated boundary samples when t0/t1 fall strictly inside a segment.
// The result is empty if the window misses the trajectory entirely.
func (p Trajectory) TimeSlice(t0, t1 float64) Trajectory {
	if len(p) == 0 || t1 < t0 || t1 < p[0].T || t0 > p[len(p)-1].T {
		return nil
	}
	var out Trajectory
	if s, ok := p.SampleAt(t0); ok {
		out = append(out, s)
	}
	for _, s := range p {
		if s.T > t0 && s.T < t1 {
			out = append(out, s)
		}
	}
	if s, ok := p.SampleAt(t1); ok && (len(out) == 0 || s.T > out[len(out)-1].T) {
		out = append(out, s)
	}
	return out
}

// IsVertexSubsetOf reports whether every sample of a appears (identically) in
// p, in order. Compression algorithms in this library only ever discard
// samples, so their output must satisfy a.IsVertexSubsetOf(original).
func (a Trajectory) IsVertexSubsetOf(p Trajectory) bool {
	j := 0
	for _, s := range a {
		for j < len(p) && p[j] != s {
			j++
		}
		if j == len(p) {
			return false
		}
		j++
	}
	return true
}

// Resample returns the trajectory re-sampled at fixed interval dt seconds
// starting at StartTime, always including the final sample. It returns nil
// for trajectories with fewer than 2 samples or non-positive dt.
func (p Trajectory) Resample(dt float64) Trajectory {
	if len(p) < 2 || dt <= 0 {
		return nil
	}
	var out Trajectory
	// Step by index so sample i sits at exactly t0 + i·dt: accumulating
	// t += dt drifts at Unix-epoch-scale timestamps and can shift or drop
	// the final samples.
	for i := 0; ; i++ {
		t := p[0].T + float64(i)*dt
		if t >= p[len(p)-1].T {
			break
		}
		s, _ := p.SampleAt(t)
		out = append(out, s)
	}
	last := p[len(p)-1]
	if out[len(out)-1].T < last.T {
		out = append(out, last)
	}
	return out
}

// SplitGaps partitions the trajectory at sampling gaps longer than maxGap
// seconds — GPS outages (tunnels, garages) where linear interpolation
// across the gap would fabricate movement. Each returned part has
// consecutive gaps ≤ maxGap; parts share no samples. Single-sample parts
// are retained (an isolated fix is still an observation).
func (p Trajectory) SplitGaps(maxGap float64) []Trajectory {
	if maxGap <= 0 {
		panic(fmt.Sprintf("trajectory: non-positive gap threshold %v", maxGap))
	}
	if len(p) == 0 {
		return nil
	}
	var out []Trajectory
	start := 0
	for i := 1; i < len(p); i++ {
		if p[i].T-p[i-1].T > maxGap {
			out = append(out, p[start:i])
			start = i
		}
	}
	return append(out, p[start:])
}

// Shift returns a copy with dt added to every timestamp and (dx, dy) added to
// every position.
func (p Trajectory) Shift(dt, dx, dy float64) Trajectory {
	q := make(Trajectory, len(p))
	for i, s := range p {
		q[i] = Sample{T: s.T + dt, X: s.X + dx, Y: s.Y + dy}
	}
	return q
}
