package trajectory

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
)

func line(n int) Trajectory {
	// Constant-speed eastward motion: 1 sample/s, 10 m/s.
	p := make(Trajectory, n)
	for i := range p {
		p[i] = S(float64(i), float64(i)*10, 0)
	}
	return p
}

func TestValidate(t *testing.T) {
	if err := line(5).Validate(); err != nil {
		t.Errorf("valid trajectory rejected: %v", err)
	}
	if err := (Trajectory{}).Validate(); err != nil {
		t.Errorf("empty trajectory rejected: %v", err)
	}
	bad := Trajectory{S(0, 0, 0), S(0, 1, 1)}
	if err := bad.Validate(); !errors.Is(err, ErrUnsorted) {
		t.Errorf("duplicate timestamp: got %v, want ErrUnsorted", err)
	}
	bad = Trajectory{S(1, 0, 0), S(0, 1, 1)}
	if err := bad.Validate(); !errors.Is(err, ErrUnsorted) {
		t.Errorf("decreasing timestamp: got %v, want ErrUnsorted", err)
	}
	bad = Trajectory{S(0, math.NaN(), 0)}
	if err := bad.Validate(); !errors.Is(err, ErrNotFinite) {
		t.Errorf("NaN coordinate: got %v, want ErrNotFinite", err)
	}
	if _, err := New([]Sample{S(1, 0, 0), S(0, 0, 0)}); err == nil {
		t.Error("New accepted invalid samples")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic on invalid input")
		}
	}()
	MustNew([]Sample{S(1, 0, 0), S(0, 0, 0)})
}

func TestBasicMeasures(t *testing.T) {
	p := line(11) // 0..10 s, 0..100 m straight east
	if got := p.Duration(); got != 10 {
		t.Errorf("Duration = %v, want 10", got)
	}
	if got := p.Length(); !almostEq(got, 100, 1e-9) {
		t.Errorf("Length = %v, want 100", got)
	}
	if got := p.Displacement(); !almostEq(got, 100, 1e-9) {
		t.Errorf("Displacement = %v, want 100", got)
	}
	if got := p.AvgSpeed(); !almostEq(got, 10, 1e-9) {
		t.Errorf("AvgSpeed = %v, want 10", got)
	}
	if got := p.SegmentSpeed(3); !almostEq(got, 10, 1e-9) {
		t.Errorf("SegmentSpeed = %v, want 10", got)
	}
}

func TestMeasuresDegenerate(t *testing.T) {
	for _, p := range []Trajectory{nil, {S(0, 1, 2)}} {
		if p.Duration() != 0 || p.Length() != 0 || p.Displacement() != 0 || p.AvgSpeed() != 0 {
			t.Errorf("degenerate trajectory %v has non-zero measures", p)
		}
	}
}

func TestDisplacementVsLength(t *testing.T) {
	// An L-shaped path: length exceeds displacement.
	p := MustNew([]Sample{S(0, 0, 0), S(10, 100, 0), S(20, 100, 100)})
	if p.Length() <= p.Displacement() {
		t.Errorf("Length %v should exceed Displacement %v", p.Length(), p.Displacement())
	}
	if !almostEq(p.Length(), 200, 1e-9) || !almostEq(p.Displacement(), math.Sqrt(2)*100, 1e-9) {
		t.Errorf("Length=%v Displacement=%v", p.Length(), p.Displacement())
	}
}

func TestLocAt(t *testing.T) {
	p := line(11)
	tests := []struct {
		t      float64
		want   geo.Point
		wantOK bool
	}{
		{0, geo.Pt(0, 0), true},
		{10, geo.Pt(100, 0), true},
		{2.5, geo.Pt(25, 0), true},
		{-1, geo.Point{}, false},
		{10.5, geo.Point{}, false},
	}
	for _, tc := range tests {
		got, ok := p.LocAt(tc.t)
		if ok != tc.wantOK {
			t.Errorf("LocAt(%v) ok = %v, want %v", tc.t, ok, tc.wantOK)
			continue
		}
		if ok && !got.AlmostEqual(tc.want, 1e-9) {
			t.Errorf("LocAt(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestLocAtSingleSample(t *testing.T) {
	p := Trajectory{S(5, 1, 2)}
	if got, ok := p.LocAt(5); !ok || !got.Equal(geo.Pt(1, 2)) {
		t.Errorf("LocAt(5) = %v, %v", got, ok)
	}
	if _, ok := p.LocAt(6); ok {
		t.Error("LocAt outside single sample answered")
	}
}

func TestLocAtExactVertices(t *testing.T) {
	p := MustNew([]Sample{S(0, 0, 0), S(1, 10, 0), S(4, 10, 30)})
	for _, s := range p {
		got, ok := p.LocAt(s.T)
		if !ok || !got.AlmostEqual(s.Pos(), 1e-9) {
			t.Errorf("LocAt(%v) = %v, %v; want %v", s.T, got, ok, s.Pos())
		}
	}
}

func TestSegmentIndexAt(t *testing.T) {
	p := MustNew([]Sample{S(0, 0, 0), S(1, 1, 0), S(3, 3, 0), S(7, 7, 0)})
	tests := []struct {
		t      float64
		want   int
		wantOK bool
	}{
		{0, 0, true}, {0.5, 0, true}, {1, 0, true},
		{2, 1, true}, {3, 1, true}, {5, 2, true}, {7, 2, true},
		{-0.1, 0, false}, {7.1, 0, false},
	}
	for _, tc := range tests {
		got, ok := p.SegmentIndexAt(tc.t)
		if ok != tc.wantOK || (ok && got != tc.want) {
			t.Errorf("SegmentIndexAt(%v) = %d, %v; want %d, %v", tc.t, got, ok, tc.want, tc.wantOK)
		}
	}
}

func TestSub(t *testing.T) {
	p := line(10)
	s := p.Sub(2, 5)
	if s.Len() != 4 || s[0] != p[2] || s[3] != p[5] {
		t.Errorf("Sub(2,5) = %v", s)
	}
	defer func() {
		if recover() == nil {
			t.Error("Sub out of range did not panic")
		}
	}()
	p.Sub(5, 2)
}

func TestTimeSlice(t *testing.T) {
	p := line(11)
	s := p.TimeSlice(2.5, 7.5)
	if err := s.Validate(); err != nil {
		t.Fatalf("TimeSlice result invalid: %v", err)
	}
	if s[0].T != 2.5 || s[len(s)-1].T != 7.5 {
		t.Errorf("TimeSlice bounds = %v..%v", s[0].T, s[len(s)-1].T)
	}
	if got, _ := Trajectory(s).LocAt(2.5); !got.AlmostEqual(geo.Pt(25, 0), 1e-9) {
		t.Errorf("interpolated start = %v", got)
	}
	// Whole-range slice reproduces the trajectory.
	whole := p.TimeSlice(0, 10)
	if whole.Len() != p.Len() {
		t.Errorf("whole TimeSlice has %d points, want %d", whole.Len(), p.Len())
	}
	// Disjoint window.
	if got := p.TimeSlice(20, 30); got != nil {
		t.Errorf("disjoint TimeSlice = %v, want nil", got)
	}
	if got := p.TimeSlice(7, 2); got != nil {
		t.Errorf("inverted TimeSlice = %v, want nil", got)
	}
}

func TestIsVertexSubsetOf(t *testing.T) {
	p := line(10)
	sub := Trajectory{p[0], p[3], p[9]}
	if !sub.IsVertexSubsetOf(p) {
		t.Error("true subset rejected")
	}
	if !(Trajectory{}).IsVertexSubsetOf(p) {
		t.Error("empty subset rejected")
	}
	notSub := Trajectory{p[3], p[0]} // wrong order
	if notSub.IsVertexSubsetOf(p) {
		t.Error("out-of-order sequence accepted")
	}
	modified := Trajectory{S(0, 0.001, 0)}
	if modified.IsVertexSubsetOf(p) {
		t.Error("modified sample accepted")
	}
}

func TestResample(t *testing.T) {
	p := line(11)
	r := p.Resample(2.5)
	if err := r.Validate(); err != nil {
		t.Fatalf("resampled invalid: %v", err)
	}
	if r[0].T != 0 || r[len(r)-1].T != 10 {
		t.Errorf("resample bounds %v..%v", r[0].T, r[len(r)-1].T)
	}
	for _, s := range r {
		want, _ := p.LocAt(s.T)
		if !s.Pos().AlmostEqual(want, 1e-9) {
			t.Errorf("resampled point %v off the path (want %v)", s, want)
		}
	}
	if p.Resample(0) != nil || (Trajectory{S(0, 0, 0)}).Resample(1) != nil {
		t.Error("degenerate Resample should return nil")
	}
}

func TestShiftAndClone(t *testing.T) {
	p := line(3)
	q := p.Shift(100, 5, -5)
	if q[0] != S(100, 5, -5) || q[2] != S(102, 25, -5) {
		t.Errorf("Shift = %v", q)
	}
	c := p.Clone()
	c[0].X = 999
	if p[0].X == 999 {
		t.Error("Clone shares storage")
	}
}

func TestBounds(t *testing.T) {
	p := MustNew([]Sample{S(0, -5, 3), S(1, 10, -2), S(2, 4, 8)})
	b := p.Bounds()
	if b.Min != geo.Pt(-5, -2) || b.Max != geo.Pt(10, 8) {
		t.Errorf("Bounds = %+v", b)
	}
}

func TestSplitGaps(t *testing.T) {
	p := MustNew([]Sample{
		S(0, 0, 0), S(10, 1, 0), S(20, 2, 0),
		S(500, 3, 0), // 480 s outage
		S(510, 4, 0),
		S(2000, 5, 0), // another outage, isolated fix
	})
	parts := p.SplitGaps(60)
	if len(parts) != 3 {
		t.Fatalf("got %d parts, want 3", len(parts))
	}
	if parts[0].Len() != 3 || parts[1].Len() != 2 || parts[2].Len() != 1 {
		t.Errorf("part sizes %d/%d/%d, want 3/2/1", parts[0].Len(), parts[1].Len(), parts[2].Len())
	}
	total := 0
	for _, part := range parts {
		if err := part.Validate(); err != nil {
			t.Errorf("part invalid: %v", err)
		}
		total += part.Len()
	}
	if total != p.Len() {
		t.Errorf("parts cover %d samples, want %d", total, p.Len())
	}
	// No gaps: single part.
	if parts := line(10).SplitGaps(60); len(parts) != 1 {
		t.Errorf("gap-free trajectory split into %d parts", len(parts))
	}
	// Empty trajectory.
	if parts := (Trajectory{}).SplitGaps(60); parts != nil {
		t.Errorf("empty trajectory split into %v", parts)
	}
	defer func() {
		if recover() == nil {
			t.Error("non-positive maxGap accepted")
		}
	}()
	p.SplitGaps(0)
}

// LocAt at a random time always lies within the bounding box and between the
// bracketing samples.
func TestLocAtInterpolationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		b := NewBuilder(0)
		tcur := 0.0
		for i := 0; i < 50; i++ {
			tcur += 0.5 + rng.Float64()*20
			if err := b.AppendPoint(tcur, rng.NormFloat64()*500, rng.NormFloat64()*500); err != nil {
				t.Fatal(err)
			}
		}
		p := b.Trajectory()
		bounds := p.Bounds()
		for i := 0; i < 20; i++ {
			tt := p.StartTime() + rng.Float64()*p.Duration()
			pt, ok := p.LocAt(tt)
			if !ok {
				t.Fatalf("LocAt(%v) failed inside span", tt)
			}
			if !bounds.Contains(pt) {
				t.Fatalf("interpolated point %v outside bounds %+v", pt, bounds)
			}
		}
	}
}

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }
