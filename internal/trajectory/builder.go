package trajectory

import "fmt"

// Builder accumulates samples incrementally, enforcing the trajectory
// invariants on every append. It is the ingestion-side counterpart of New:
// use it when samples arrive one at a time (GPS fixes, stream replay).
//
// The zero value is ready to use. Builder is not safe for concurrent use.
type Builder struct {
	samples []Sample
}

// NewBuilder returns a builder with capacity preallocated for n samples.
func NewBuilder(n int) *Builder {
	return &Builder{samples: make([]Sample, 0, n)}
}

// Append adds one sample. It returns an error if the sample is non-finite or
// its timestamp does not strictly increase.
func (b *Builder) Append(s Sample) error {
	if !s.IsFinite() {
		return fmt.Errorf("%w: %v", ErrNotFinite, s)
	}
	if n := len(b.samples); n > 0 && s.T <= b.samples[n-1].T {
		return fmt.Errorf("%w: t=%v after t=%v", ErrUnsorted, s.T, b.samples[n-1].T)
	}
	b.samples = append(b.samples, s)
	return nil
}

// AppendPoint is Append with unpacked components.
func (b *Builder) AppendPoint(t, x, y float64) error {
	return b.Append(Sample{T: t, X: x, Y: y})
}

// Len returns the number of samples accumulated so far.
func (b *Builder) Len() int { return len(b.samples) }

// Last returns the most recently appended sample; ok is false when empty.
func (b *Builder) Last() (Sample, bool) {
	if len(b.samples) == 0 {
		return Sample{}, false
	}
	return b.samples[len(b.samples)-1], true
}

// Trajectory returns the accumulated samples. The builder retains ownership
// of the backing array until Reset; callers that keep building afterwards
// should Clone the result.
func (b *Builder) Trajectory() Trajectory { return Trajectory(b.samples) }

// Reset discards all accumulated samples, retaining capacity.
func (b *Builder) Reset() { b.samples = b.samples[:0] }
