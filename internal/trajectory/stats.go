package trajectory

import (
	"fmt"
	"math"
	"time"
)

// Stats summarizes one trajectory with the quantities reported in the
// paper's Table 2.
type Stats struct {
	Duration     float64 // seconds
	AvgSpeed     float64 // m/s
	Length       float64 // metres
	Displacement float64 // metres
	NumPoints    int
}

// Summarize computes per-trajectory statistics.
func Summarize(p Trajectory) Stats {
	return Stats{
		Duration:     p.Duration(),
		AvgSpeed:     p.AvgSpeed(),
		Length:       p.Length(),
		Displacement: p.Displacement(),
		NumPoints:    p.Len(),
	}
}

// DatasetStats holds the mean and standard deviation of each Stats field
// over a set of trajectories — the two columns of the paper's Table 2.
type DatasetStats struct {
	Mean, StdDev Stats
	N            int
}

// SummarizeDataset computes dataset-level statistics over trajectories.
// Standard deviations are population standard deviations over the set.
func SummarizeDataset(ps []Trajectory) DatasetStats {
	n := len(ps)
	if n == 0 {
		return DatasetStats{}
	}
	var mean Stats
	for _, p := range ps {
		s := Summarize(p)
		mean.Duration += s.Duration
		mean.AvgSpeed += s.AvgSpeed
		mean.Length += s.Length
		mean.Displacement += s.Displacement
		mean.NumPoints += s.NumPoints
	}
	fn := float64(n)
	mean.Duration /= fn
	mean.AvgSpeed /= fn
	mean.Length /= fn
	mean.Displacement /= fn
	meanPts := float64(mean.NumPoints) / fn

	var sd Stats
	var sdPts float64
	for _, p := range ps {
		s := Summarize(p)
		sd.Duration += sq(s.Duration - mean.Duration)
		sd.AvgSpeed += sq(s.AvgSpeed - mean.AvgSpeed)
		sd.Length += sq(s.Length - mean.Length)
		sd.Displacement += sq(s.Displacement - mean.Displacement)
		sdPts += sq(float64(s.NumPoints) - meanPts)
	}
	sd.Duration = math.Sqrt(sd.Duration / fn)
	sd.AvgSpeed = math.Sqrt(sd.AvgSpeed / fn)
	sd.Length = math.Sqrt(sd.Length / fn)
	sd.Displacement = math.Sqrt(sd.Displacement / fn)
	sd.NumPoints = int(math.Round(math.Sqrt(sdPts / fn)))
	mean.NumPoints = int(math.Round(meanPts))

	return DatasetStats{Mean: mean, StdDev: sd, N: n}
}

func sq(v float64) float64 { return v * v }

// FormatDuration renders seconds as hh:mm:ss, the paper's Table 2 format.
func FormatDuration(seconds float64) string {
	d := time.Duration(seconds * float64(time.Second)).Round(time.Second)
	h := int(d.Hours())
	m := int(d.Minutes()) % 60
	s := int(d.Seconds()) % 60
	return fmt.Sprintf("%02d:%02d:%02d", h, m, s)
}

// String renders the stats in Table 2 units (duration hh:mm:ss, speed km/h,
// length and displacement km).
func (s Stats) String() string {
	return fmt.Sprintf("duration %s, speed %.2f km/h, length %.2f km, displacement %.2f km, %d points",
		FormatDuration(s.Duration), s.AvgSpeed*3.6, s.Length/1000, s.Displacement/1000, s.NumPoints)
}
