// Package quality evaluates compression results: compression rate and the
// error notions of the paper's §4.1–4.2.
//
// Two families of error are provided:
//
//   - Perpendicular-distance error (Fig. 5a): the classic line-generalization
//     notion, measured either at the original data points or as a
//     sampling-rate-insensitive time-weighted mean of chord lengths.
//   - Time-synchronized error (Fig. 5b / §4.2): the paper's proposed α(p, a),
//     delegated to internal/sed.
package quality

import (
	"fmt"
	"sort"

	"repro/internal/geo"
	"repro/internal/sed"
	"repro/internal/trajectory"
)

// Report bundles the evaluation of one compression run.
type Report struct {
	Algorithm      string
	OriginalLen    int
	CompressedLen  int
	CompressionPct float64 // % of points removed

	SyncAvgError float64 // α(p, a), metres
	SyncMaxError float64 // max synchronized distance, metres

	PerpAvgError float64 // mean perpendicular distance of original points
	PerpMaxError float64 // max perpendicular distance of original points
}

// String renders the report as a single human-readable line.
func (r Report) String() string {
	return fmt.Sprintf("%-16s %4d → %4d points (%5.1f%%)  sync avg %7.2f m max %7.2f m  perp avg %7.2f m max %7.2f m",
		r.Algorithm, r.OriginalLen, r.CompressedLen, r.CompressionPct,
		r.SyncAvgError, r.SyncMaxError, r.PerpAvgError, r.PerpMaxError)
}

// Evaluate measures approximation a of original p under every metric.
// name labels the report (typically Algorithm.Name()).
func Evaluate(name string, p, a trajectory.Trajectory) (Report, error) {
	r := Report{
		Algorithm:      name,
		OriginalLen:    p.Len(),
		CompressedLen:  a.Len(),
		CompressionPct: 100 * float64(p.Len()-a.Len()) / float64(max(1, p.Len())),
	}
	var err error
	if r.SyncAvgError, err = sed.AvgError(p, a); err != nil {
		return Report{}, fmt.Errorf("quality: sync avg error: %w", err)
	}
	if r.SyncMaxError, err = sed.MaxError(p, a); err != nil {
		return Report{}, fmt.Errorf("quality: sync max error: %w", err)
	}
	r.PerpAvgError, r.PerpMaxError, err = PerpError(p, a)
	if err != nil {
		return Report{}, err
	}
	return r, nil
}

// PerpError computes the perpendicular-distance error notion of plain line
// generalization (§4.1): for every original data point, the distance to the
// nearest point of the approximation segment covering its index range. It
// returns the mean over interior points and the maximum.
//
// The approximation a must be a vertex subsequence of p that starts at p's
// first sample; otherwise an error is returned.
func PerpError(p, a trajectory.Trajectory) (avg, maxErr float64, err error) {
	if p.Len() < 2 || a.Len() < 2 {
		return 0, 0, fmt.Errorf("quality: need at least 2 samples in both trajectories (have %d and %d)", p.Len(), a.Len())
	}
	var sum float64
	var count int
	ai := 0
	for k := 0; k+1 < a.Len(); k++ {
		for ai < p.Len() && p[ai] != a[k] {
			ai++
		}
		if ai == p.Len() {
			return 0, 0, fmt.Errorf("quality: approximation vertex %v not found in original", a[k])
		}
		lo := ai
		hi := lo + 1
		for hi < p.Len() && p[hi] != a[k+1] {
			hi++
		}
		if hi == p.Len() {
			return 0, 0, fmt.Errorf("quality: approximation vertex %v not found in original", a[k+1])
		}
		seg := geo.Seg(p[lo].Pos(), p[hi].Pos())
		for i := lo + 1; i < hi; i++ {
			d := seg.Dist(p[i].Pos())
			sum += d
			if d > maxErr {
				maxErr = d
			}
			count++
		}
	}
	if count == 0 {
		return 0, 0, nil
	}
	return sum / float64(count), maxErr, nil
}

// PerpAreaError computes the sampling-insensitive variant of the
// perpendicular error (§4.1, Fig. 5a): the original trajectory is traversed
// at progressively finer resolution and the distance from each interpolated
// original position to the covering approximation segment is averaged with
// time weights. As the paper notes, in the limit this equals a sum of
// weighted areas between original and approximation. dt sets the sampling
// interval in seconds; it must be positive.
func PerpAreaError(p, a trajectory.Trajectory, dt float64) (float64, error) {
	if dt <= 0 {
		return 0, fmt.Errorf("quality: non-positive sampling interval %v", dt)
	}
	if p.Len() < 2 || a.Len() < 2 {
		return 0, fmt.Errorf("quality: need at least 2 samples in both trajectories")
	}
	// Associate each fine sample of p with the approximation segment active
	// at its timestamp; distance is to the segment (not the infinite line),
	// which keeps the measure finite at strong corners.
	var sum float64
	var n int
	// Step by index, not by accumulating t += dt: at Unix-epoch-scale
	// timestamps the accumulated rounding error shifts or drops the final
	// instants of the sweep.
	ts, te := p.StartTime(), p.EndTime()
	for i := 0; ; i++ {
		t := ts + float64(i)*dt
		if t > te {
			break
		}
		pp, ok := p.LocAt(t)
		if !ok {
			continue
		}
		i, ok := a.SegmentIndexAt(t)
		if !ok {
			continue
		}
		sum += a.Segment(i).Dist(pp)
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("quality: no overlapping samples at dt=%v", dt)
	}
	return sum / float64(n), nil
}

// ErrorPoint is the synchronized error at one instant.
type ErrorPoint struct {
	T    float64
	Dist float64
}

// ErrorProfile samples the synchronized distance between original and
// approximation every dt seconds over their overlapping span — the raw
// material for plots and percentile summaries of how error evolves along
// the journey.
func ErrorProfile(p, a trajectory.Trajectory, dt float64) ([]ErrorPoint, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("quality: non-positive sampling interval %v", dt)
	}
	if p.Len() < 2 || a.Len() < 2 {
		return nil, fmt.Errorf("quality: need at least 2 samples in both trajectories")
	}
	t0 := p.StartTime()
	if a.StartTime() > t0 {
		t0 = a.StartTime()
	}
	t1 := p.EndTime()
	if a.EndTime() < t1 {
		t1 = a.EndTime()
	}
	if t1 <= t0 {
		return nil, fmt.Errorf("quality: trajectories share no time overlap")
	}
	var out []ErrorPoint
	// Index stepping: see PerpAreaError.
	for i := 0; ; i++ {
		t := t0 + float64(i)*dt
		if t > t1 {
			break
		}
		pp, ok1 := p.LocAt(t)
		pa, ok2 := a.LocAt(t)
		if !ok1 || !ok2 {
			continue
		}
		out = append(out, ErrorPoint{T: t, Dist: pp.Dist(pa)})
	}
	return out, nil
}

// ErrorPercentiles returns the requested percentiles (in [0, 100]) of the
// synchronized error distribution over time, sampled at interval dt.
func ErrorPercentiles(p, a trajectory.Trajectory, dt float64, percentiles []float64) ([]float64, error) {
	profile, err := ErrorProfile(p, a, dt)
	if err != nil {
		return nil, err
	}
	dists := make([]float64, len(profile))
	for i, e := range profile {
		dists[i] = e.Dist
	}
	sort.Float64s(dists)
	out := make([]float64, len(percentiles))
	for k, pc := range percentiles {
		if pc < 0 || pc > 100 {
			return nil, fmt.Errorf("quality: percentile %v outside [0, 100]", pc)
		}
		// Interpolated quantile over the order statistics (the convention
		// internal/metrics' histogram quantiles follow): rank pc/100·(n−1),
		// linear between the adjacent samples. Truncating the rank to an
		// integer index would bias every percentile low.
		rank := pc / 100 * float64(len(dists)-1)
		lo := int(rank)
		v := dists[lo]
		if frac := rank - float64(lo); frac > 0 && lo+1 < len(dists) {
			v += frac * (dists[lo+1] - v)
		}
		out[k] = v
	}
	return out, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
