package quality

import (
	"math"
	"strings"
	"testing"

	"repro/internal/compress"
	"repro/internal/trajectory"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

// A triangle wave approximated by its baseline.
func wave() (p, a trajectory.Trajectory) {
	p = trajectory.MustNew([]trajectory.Sample{
		trajectory.S(0, 0, 0),
		trajectory.S(1, 10, 4),
		trajectory.S(2, 20, 0),
		trajectory.S(3, 30, 4),
		trajectory.S(4, 40, 0),
	})
	a = trajectory.Trajectory{p[0], p[4]}
	return p, a
}

func TestPerpError(t *testing.T) {
	p, a := wave()
	avg, maxE, err := PerpError(p, a)
	if err != nil {
		t.Fatal(err)
	}
	// Interior points sit at heights 4, 0, 4 above the baseline.
	if !almostEq(avg, 8.0/3, 1e-9) {
		t.Errorf("avg = %v, want 8/3", avg)
	}
	if !almostEq(maxE, 4, 1e-9) {
		t.Errorf("max = %v, want 4", maxE)
	}
}

func TestPerpErrorIdentity(t *testing.T) {
	p, _ := wave()
	avg, maxE, err := PerpError(p, p)
	if err != nil {
		t.Fatal(err)
	}
	if avg != 0 || maxE != 0 {
		t.Errorf("identity PerpError = %v, %v", avg, maxE)
	}
}

func TestPerpErrorRejectsNonSubsequence(t *testing.T) {
	p, _ := wave()
	alien := trajectory.MustNew([]trajectory.Sample{
		trajectory.S(0, 0, 0), trajectory.S(4, 40, 1), // second vertex not in p
	})
	if _, _, err := PerpError(p, alien); err == nil {
		t.Error("non-subsequence approximation accepted")
	}
	short := trajectory.Trajectory{trajectory.S(0, 0, 0)}
	if _, _, err := PerpError(p, short); err == nil {
		t.Error("single-vertex approximation accepted")
	}
}

func TestPerpAreaError(t *testing.T) {
	p, a := wave()
	got, err := PerpAreaError(p, a, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	// Mean height of the triangle wave |/\/\| over the baseline is 2.
	if !almostEq(got, 2, 0.01) {
		t.Errorf("area error = %v, want ≈2", got)
	}
	if _, err := PerpAreaError(p, a, 0); err == nil {
		t.Error("dt=0 accepted")
	}
	if _, err := PerpAreaError(trajectory.Trajectory{}, a, 1); err == nil {
		t.Error("empty original accepted")
	}
}

func TestEvaluate(t *testing.T) {
	p, _ := wave()
	a := compress.TDTR{Threshold: 3}.Compress(p)
	r, err := Evaluate("TD-TR", p, a)
	if err != nil {
		t.Fatal(err)
	}
	if r.Algorithm != "TD-TR" || r.OriginalLen != 5 || r.CompressedLen != a.Len() {
		t.Errorf("report header wrong: %+v", r)
	}
	if r.SyncMaxError > 3+1e-9 {
		t.Errorf("sync max %v exceeds TD-TR threshold", r.SyncMaxError)
	}
	if r.CompressionPct < 0 || r.CompressionPct > 100 {
		t.Errorf("compression %% out of range: %v", r.CompressionPct)
	}
	if !strings.Contains(r.String(), "TD-TR") {
		t.Errorf("String() missing algorithm name: %q", r.String())
	}
}

func TestEvaluateErrors(t *testing.T) {
	p, _ := wave()
	if _, err := Evaluate("x", p, trajectory.Trajectory{p[0]}); err == nil {
		t.Error("degenerate approximation accepted")
	}
}

func TestErrorProfile(t *testing.T) {
	p, a := wave()
	prof, err := ErrorProfile(p, a, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof) < 10 {
		t.Fatalf("profile has %d points", len(prof))
	}
	// Error vanishes at shared endpoints and peaks at the wave crests.
	if prof[0].Dist > 1e-9 {
		t.Errorf("error at start = %v", prof[0].Dist)
	}
	var peak float64
	for _, e := range prof {
		if e.Dist > peak {
			peak = e.Dist
		}
	}
	if !almostEq(peak, 4, 1e-9) {
		t.Errorf("peak error = %v, want 4", peak)
	}
	if _, err := ErrorProfile(p, a, 0); err == nil {
		t.Error("dt=0 accepted")
	}
	if _, err := ErrorProfile(p, trajectory.Trajectory{}, 1); err == nil {
		t.Error("empty approximation accepted")
	}
}

func TestErrorPercentiles(t *testing.T) {
	p, a := wave()
	pcs, err := ErrorPercentiles(p, a, 0.01, []float64{0, 50, 100})
	if err != nil {
		t.Fatal(err)
	}
	if pcs[0] > pcs[1] || pcs[1] > pcs[2] {
		t.Errorf("percentiles not monotone: %v", pcs)
	}
	if !almostEq(pcs[2], 4, 0.02) {
		t.Errorf("p100 = %v, want ≈4", pcs[2])
	}
	if _, err := ErrorPercentiles(p, a, 0.01, []float64{-1}); err == nil {
		t.Error("negative percentile accepted")
	}
}

// The synchronized average error always upper-bounds zero and relates
// sensibly to the perpendicular error on time-uniform data: for an object
// moving at constant speed along each segment the two notions coincide in
// spirit (sync ≥ perp, since perpendicular projection is the closest point).
func TestSyncDominatesPerp(t *testing.T) {
	p, a := wave()
	r, err := Evaluate("baseline", p, a)
	if err != nil {
		t.Fatal(err)
	}
	if r.SyncMaxError+1e-9 < r.PerpMaxError {
		t.Errorf("sync max %v below perp max %v", r.SyncMaxError, r.PerpMaxError)
	}
}
