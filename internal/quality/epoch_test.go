package quality

import (
	"testing"

	"repro/internal/trajectory"
)

// epoch is a Unix-epoch-scale base timestamp (≈ Nov 2023). At this
// magnitude a float64 ulp is ≈ 2.4e-7 s, so accumulating t += dt in a
// loop drifts by a fraction of an ulp per step — enough to shift the
// final sampling instant off the interval end or drop it entirely.
const epoch = 1.7e9

// TestErrorProfileEpochTimestamps is the regression test for the
// float-accumulation time-stepping bug: with t0 = 1.7e9 and dt = 0.7 the
// old `for t := t0; t <= t1; t += dt` loop overshoots t1 after 10 steps
// (accumulated t ≈ t1 + 4.3e-7) and silently drops the final instant,
// yielding 10 profile points instead of 11. Index stepping lands on t1
// exactly because float64(10)*0.7 + 1.7e9 == 1.7e9 + 7.
func TestErrorProfileEpochTimestamps(t *testing.T) {
	p := trajectory.MustNew([]trajectory.Sample{
		{T: epoch, X: 0, Y: 0},
		{T: epoch + 7, X: 70, Y: 0},
	})
	a := trajectory.MustNew([]trajectory.Sample{
		{T: epoch, X: 0, Y: 7},
		{T: epoch + 7, X: 70, Y: 7},
	})
	prof, err := ErrorProfile(p, a, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof) != 11 {
		t.Fatalf("profile has %d points, want 11 (final instant dropped by accumulated rounding?)", len(prof))
	}
	for i, e := range prof {
		if want := epoch + float64(i)*0.7; e.T != want {
			t.Errorf("profile[%d].T = %.9f, want exactly %.9f (off-grid by %g)", i, e.T, want, e.T-want)
		}
	}
	if last := prof[len(prof)-1].T; last != epoch+7 {
		t.Errorf("final profile instant %.9f, want the interval end %v exactly", last, epoch+7)
	}

	// dt = 0.1 under-shoots instead: the old loop's final instant lands at
	// ≈ t1 − 3.8e-6 rather than t1. Same count, wrong grid.
	prof, err = ErrorProfile(p, a, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof) != 71 {
		t.Fatalf("dt=0.1 profile has %d points, want 71", len(prof))
	}
	if last := prof[len(prof)-1].T; last != epoch+7 {
		t.Errorf("dt=0.1 final instant %.9f ≠ interval end (shifted by %g)", last, last-(epoch+7))
	}
}

// PerpAreaError shares the sweep loop; at epoch scale the dropped final
// instant changes the sample count the mean divides by.
func TestPerpAreaErrorEpochTimestamps(t *testing.T) {
	p := trajectory.MustNew([]trajectory.Sample{
		{T: epoch, X: 0, Y: 0},
		{T: epoch + 3.5, X: 35, Y: 0},
		{T: epoch + 7, X: 70, Y: 0},
	})
	a := trajectory.Trajectory{p[0], p[2]}
	got, err := PerpAreaError(p, a, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	// The path is a straight line, so every one of the 11 sweep instants
	// contributes 0 — the value is exact and the call must not error out.
	if got != 0 {
		t.Errorf("collinear PerpAreaError = %v, want 0", got)
	}
}

// TestErrorPercentilesInterpolated pins the interpolated-quantile
// convention with hand-computed values: a stationary original versus an
// approximation walking away at 10 m/s, sampled every second over 4 s,
// gives the distance multiset {0, 10, 20, 30, 40}.
func TestErrorPercentilesInterpolated(t *testing.T) {
	p := trajectory.MustNew([]trajectory.Sample{
		{T: 0, X: 0, Y: 0},
		{T: 4, X: 0, Y: 0}, // stationary: only timestamps must increase
	})
	a := trajectory.MustNew([]trajectory.Sample{
		{T: 0, X: 0, Y: 0},
		{T: 4, X: 40, Y: 0},
	})
	got, err := ErrorPercentiles(p, a, 1, []float64{0, 37.5, 50, 90, 100})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 15, 20, 36, 40}
	for i := range want {
		if !almostEq(got[i], want[i], 1e-4) {
			t.Errorf("percentile %d: got %v, want %v (truncated-rank quantile would bias low)", i, got[i], want[i])
		}
	}
}
