package analysis

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geo"
	"repro/internal/trajectory"
)

// ODMatrix aggregates trips between origin and destination zones — the
// classic commuter-flow summary of the paper's rush-hour analysis. Zones
// are square cells of the given size.
type ODMatrix struct {
	// Zone is the zone cell edge length in metres.
	Zone float64
	// Counts maps (originCX, originCY, destCX, destCY) to trip counts.
	Counts map[[4]int]int
}

// Flow is one aggregated origin→destination movement.
type Flow struct {
	Origin, Dest geo.Point // zone centres
	Count        int
}

// OriginDestination bins each trajectory's first and last positions into
// zones and counts the flows. Trajectories with fewer than 2 samples are
// skipped.
func OriginDestination(ps []trajectory.Trajectory, zone float64) (*ODMatrix, error) {
	if zone <= 0 {
		return nil, fmt.Errorf("analysis: non-positive zone size %v", zone)
	}
	m := &ODMatrix{Zone: zone, Counts: make(map[[4]int]int)}
	cell := func(p geo.Point) (int, int) {
		return int(math.Floor(p.X / zone)), int(math.Floor(p.Y / zone))
	}
	for _, p := range ps {
		if p.Len() < 2 {
			continue
		}
		ox, oy := cell(p[0].Pos())
		dx, dy := cell(p[p.Len()-1].Pos())
		m.Counts[[4]int{ox, oy, dx, dy}]++
	}
	return m, nil
}

// Trips returns the total number of counted trips.
func (m *ODMatrix) Trips() int {
	var n int
	for _, c := range m.Counts {
		n += c
	}
	return n
}

// TopFlows returns the k heaviest flows, ordered by decreasing count (ties
// broken deterministically by zone indices).
func (m *ODMatrix) TopFlows(k int) []Flow {
	type kv struct {
		key [4]int
		n   int
	}
	items := make([]kv, 0, len(m.Counts))
	for key, n := range m.Counts {
		items = append(items, kv{key, n})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].n != items[j].n {
			return items[i].n > items[j].n
		}
		return items[i].key[0] < items[j].key[0] ||
			(items[i].key[0] == items[j].key[0] && items[i].key[1] < items[j].key[1])
	})
	if len(items) > k {
		items = items[:k]
	}
	centre := func(cx, cy int) geo.Point {
		return geo.Pt((float64(cx)+0.5)*m.Zone, (float64(cy)+0.5)*m.Zone)
	}
	out := make([]Flow, len(items))
	for i, it := range items {
		out[i] = Flow{
			Origin: centre(it.key[0], it.key[1]),
			Dest:   centre(it.key[2], it.key[3]),
			Count:  it.n,
		}
	}
	return out
}
