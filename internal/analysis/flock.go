package analysis

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/trajectory"
)

// Flock is a group of objects that travelled together: every member stayed
// within Radius of every other member (clique semantics are relaxed to
// connected components, the usual "convoy" definition) for the whole
// interval.
type Flock struct {
	Interval
	// Members holds the indices (into the input slice) of the objects
	// travelling together, sorted.
	Members []int
}

// Flocks detects groups of at least minSize objects that moved within
// radius of each other (pairwise-connected, transitively) for at least
// minDuration seconds. The continuous trajectories are examined at sampling
// interval dt; group membership changes are resolved at that granularity.
//
// This is the convoy/flock pattern of the moving-object literature, built
// directly on the synchronized-movement model: positions are compared at
// common time instants.
func Flocks(ps []trajectory.Trajectory, radius float64, minSize int, minDuration, dt float64) ([]Flock, error) {
	if radius <= 0 || minSize < 2 || minDuration < 0 || dt <= 0 {
		return nil, fmt.Errorf("analysis: invalid flock parameters (radius %v, minSize %d, minDuration %v, dt %v)",
			radius, minSize, minDuration, dt)
	}
	if len(ps) < minSize {
		return nil, nil
	}
	// Global time span.
	t0, t1 := math.Inf(1), math.Inf(-1)
	for _, p := range ps {
		if p.Len() < 2 {
			continue
		}
		t0 = math.Min(t0, p.StartTime())
		t1 = math.Max(t1, p.EndTime())
	}
	if t0 >= t1 {
		return nil, nil
	}

	// active tracks the currently open candidate groups, keyed by member
	// signature.
	type open struct {
		members []int
		since   float64
		lastOK  float64
	}
	activeGroups := map[string]*open{}
	var out []Flock

	closeGroup := func(g *open) {
		if g.lastOK-g.since >= minDuration {
			out = append(out, Flock{
				Interval: Interval{T0: g.since, T1: g.lastOK},
				Members:  g.members,
			})
		}
	}

	// Step by index (t = t0 + i·dt): accumulating t += dt drifts at
	// Unix-epoch-scale timestamps; the dt/2 slack still admits a final
	// instant that only just reaches t1.
	for i := 0; ; i++ {
		t := t0 + float64(i)*dt
		if t > t1+dt/2 {
			break
		}
		comps := componentsAt(ps, t, radius, minSize)
		seen := map[string]bool{}
		for _, members := range comps {
			key := sig(members)
			seen[key] = true
			if g, ok := activeGroups[key]; ok {
				g.lastOK = t
			} else {
				activeGroups[key] = &open{members: members, since: t, lastOK: t}
			}
		}
		for key, g := range activeGroups {
			if !seen[key] {
				closeGroup(g)
				delete(activeGroups, key)
			}
		}
	}
	for _, g := range activeGroups {
		closeGroup(g)
	}

	sort.Slice(out, func(i, j int) bool {
		//lint:allow floatcmp deterministic sort tie-break on identical timestamps
		if out[i].T0 != out[j].T0 {
			return out[i].T0 < out[j].T0
		}
		return sig(out[i].Members) < sig(out[j].Members)
	})
	return out, nil
}

// componentsAt returns the connected components (≥ minSize) of the
// proximity graph at time t.
func componentsAt(ps []trajectory.Trajectory, t, radius float64, minSize int) [][]int {
	type pos struct {
		idx  int
		x, y float64
	}
	var live []pos
	for i, p := range ps {
		if pt, ok := p.LocAt(t); ok {
			live = append(live, pos{idx: i, x: pt.X, y: pt.Y})
		}
	}
	n := len(live)
	if n < minSize {
		return nil
	}
	// Union-find over live objects.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		if parent[i] != i {
			parent[i] = find(parent[i])
		}
		return parent[i]
	}
	r2 := radius * radius
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx, dy := live[i].x-live[j].x, live[i].y-live[j].y
			if dx*dx+dy*dy <= r2 {
				parent[find(i)] = find(j)
			}
		}
	}
	groups := map[int][]int{}
	for i := range live {
		root := find(i)
		groups[root] = append(groups[root], live[i].idx)
	}
	var out [][]int
	for _, members := range groups {
		if len(members) >= minSize {
			sort.Ints(members)
			out = append(out, members)
		}
	}
	return out
}

// sig builds a canonical string key for a sorted member list.
func sig(members []int) string {
	out := make([]byte, 0, len(members)*3)
	for _, m := range members {
		out = append(out, byte(m>>16), byte(m>>8), byte(m))
	}
	return string(out)
}
