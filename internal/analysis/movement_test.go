package analysis

import (
	"math"
	"testing"

	"repro/internal/gpsgen"
	"repro/internal/trajectory"
)

// stopTrack drives 10 m/s until t=60, stands still (x≈600) until t=100,
// then drives again.
func stopTrack() trajectory.Trajectory {
	var p trajectory.Trajectory
	for i := 0; i <= 6; i++ { // (0,0) .. (60,600) moving
		p = append(p, trajectory.S(float64(i*10), float64(i*100), 0))
	}
	for i := 1; i <= 4; i++ { // 70..100 s stationary with tiny jitter
		p = append(p, trajectory.S(60+float64(i*10), 600+float64(i)*0.1, 0))
	}
	for i := 1; i <= 5; i++ { // moving again from t=100
		p = append(p, trajectory.S(100+float64(i*10), 600.4+float64(i*100), 0))
	}
	return p
}

func TestStops(t *testing.T) {
	p := stopTrack()
	stops, err := Stops(p, 1.0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(stops) != 1 {
		t.Fatalf("Stops = %v, want exactly one", stops)
	}
	s := stops[0]
	if !almostEq(s.T0, 60, 1e-9) || !almostEq(s.T1, 100, 1e-9) {
		t.Errorf("stop interval [%v, %v], want [60, 100]", s.T0, s.T1)
	}
	if math.Abs(s.Center.X-600) > 1 {
		t.Errorf("stop centre %v, want ≈(600, 0)", s.Center)
	}
	if got := StoppedTime(stops); !almostEq(got, 40, 1e-9) {
		t.Errorf("StoppedTime = %v, want 40", got)
	}
}

func TestStopsMinDuration(t *testing.T) {
	p := stopTrack()
	stops, err := Stops(p, 1.0, 60) // stop lasts only 40 s
	if err != nil {
		t.Fatal(err)
	}
	if len(stops) != 0 {
		t.Errorf("short stay not filtered: %v", stops)
	}
	if _, err := Stops(p, 0, 10); err == nil {
		t.Error("zero maxSpeed accepted")
	}
}

func TestStopsOnGeneratedUrbanTrip(t *testing.T) {
	p := gpsgen.New(8, gpsgen.Config{}).Trip(gpsgen.Urban, 1800)
	stops, err := Stops(p, 1.5, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(stops) == 0 {
		t.Error("urban trip with traffic lights yielded no stops")
	}
	if StoppedTime(stops) >= p.Duration() {
		t.Error("stopped longer than the trip")
	}
}

func TestProfile(t *testing.T) {
	p := stopTrack()
	prof := Profile(p)
	if len(prof) != p.Len()-1 {
		t.Fatalf("profile has %d points, want %d", len(prof), p.Len()-1)
	}
	if !almostEq(prof[0].Speed, 10, 1e-9) {
		t.Errorf("first speed = %v, want 10", prof[0].Speed)
	}
	if !almostEq(prof[0].Heading, 0, 1e-9) {
		t.Errorf("heading = %v, want 0 (east)", prof[0].Heading)
	}
	if !almostEq(prof[0].T, 5, 1e-9) {
		t.Errorf("midpoint time = %v, want 5", prof[0].T)
	}
	if Profile(trajectory.Trajectory{trajectory.S(0, 0, 0)}) != nil {
		t.Error("profile of single sample should be nil")
	}
}

func TestSpeedPercentiles(t *testing.T) {
	p := stopTrack()
	pcs, err := SpeedPercentiles(p, []float64{0, 50, 100})
	if err != nil {
		t.Fatal(err)
	}
	if pcs[0] > pcs[1] || pcs[1] > pcs[2] {
		t.Errorf("percentiles not monotone: %v", pcs)
	}
	if !almostEq(pcs[2], 10, 1e-6) {
		t.Errorf("p100 = %v, want 10", pcs[2])
	}
	if pcs[0] > 0.2 {
		t.Errorf("p0 = %v, want ≈0 (standing still)", pcs[0])
	}
	if _, err := SpeedPercentiles(p, []float64{101}); err == nil {
		t.Error("percentile > 100 accepted")
	}
	if _, err := SpeedPercentiles(trajectory.Trajectory{}, []float64{50}); err == nil {
		t.Error("empty trajectory accepted")
	}
}
