package analysis

import (
	"fmt"
	"math"

	"repro/internal/trajectory"
)

// Trajectory similarity measures over the sample sequences. Unlike the
// synchronized error (which compares the same object before and after
// compression), these compare different objects' paths regardless of
// absolute timing — the clustering/classification side of pattern analysis.

// DTW returns the dynamic time warping distance between the positional
// sequences of p and q: the minimal sum of point distances over all
// monotone alignments. O(len(p)·len(q)) time, O(min) memory.
func DTW(p, q trajectory.Trajectory) (float64, error) {
	return DTWWindowed(p, q, 0)
}

// DTWWindowed is DTW with a Sakoe-Chiba band of half-width w samples
// (w = 0 means unconstrained). A band both speeds up the computation and
// prevents pathological alignments between very different-length series.
func DTWWindowed(p, q trajectory.Trajectory, w int) (float64, error) {
	n, m := p.Len(), q.Len()
	if n == 0 || m == 0 {
		return 0, fmt.Errorf("analysis: DTW needs non-empty trajectories (have %d and %d)", n, m)
	}
	if w < 0 {
		return 0, fmt.Errorf("analysis: negative DTW window %d", w)
	}
	if w != 0 && w < abs(n-m) {
		// The band must at least bridge the length difference.
		w = abs(n - m)
	}
	inf := math.Inf(1)
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		for j := range cur {
			cur[j] = inf
		}
		lo, hi := 1, m
		if w != 0 {
			if lo < i-w {
				lo = i - w
			}
			if hi > i+w {
				hi = i + w
			}
		}
		for j := lo; j <= hi; j++ {
			d := p[i-1].Pos().Dist(q[j-1].Pos())
			best := math.Min(prev[j], math.Min(cur[j-1], prev[j-1]))
			cur[j] = d + best
		}
		prev, cur = cur, prev
	}
	return prev[m], nil
}

// Frechet returns the discrete Fréchet distance (the "dog leash" measure)
// between the positional sequences: the minimal over monotone alignments of
// the maximal point distance. O(len(p)·len(q)) time.
func Frechet(p, q trajectory.Trajectory) (float64, error) {
	n, m := p.Len(), q.Len()
	if n == 0 || m == 0 {
		return 0, fmt.Errorf("analysis: Fréchet needs non-empty trajectories (have %d and %d)", n, m)
	}
	prev := make([]float64, m)
	cur := make([]float64, m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			d := p[i].Pos().Dist(q[j].Pos())
			switch {
			case i == 0 && j == 0:
				cur[j] = d
			case i == 0:
				cur[j] = math.Max(cur[j-1], d)
			case j == 0:
				cur[j] = math.Max(prev[0], d)
			default:
				cur[j] = math.Max(math.Min(prev[j], math.Min(prev[j-1], cur[j-1])), d)
			}
		}
		prev, cur = cur, prev
	}
	return prev[m-1], nil
}

// LCSS returns the Longest Common SubSequence similarity of the positional
// sequences: the fraction (in [0, 1]) of the shorter sequence that can be
// matched, in order, to points of the other within eps metres. Unlike DTW it
// is robust to outlier fixes — unmatched points simply do not contribute.
func LCSS(p, q trajectory.Trajectory, eps float64) (float64, error) {
	n, m := p.Len(), q.Len()
	if n == 0 || m == 0 {
		return 0, fmt.Errorf("analysis: LCSS needs non-empty trajectories (have %d and %d)", n, m)
	}
	if eps <= 0 {
		return 0, fmt.Errorf("analysis: non-positive LCSS matching distance %v", eps)
	}
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			if p[i-1].Pos().Dist(q[j-1].Pos()) <= eps {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
		for j := range cur {
			cur[j] = 0
		}
	}
	shorter := n
	if m < shorter {
		shorter = m
	}
	return float64(prev[m]) / float64(shorter), nil
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
