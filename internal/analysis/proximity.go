// Package analysis provides the moving-object analysis tools the paper's
// introduction motivates ("tools to study, analyse and understand these
// patterns"): proximity analysis between synchronously moving objects,
// movement characterization (stops, speed and heading profiles), and
// trajectory similarity measures (dynamic time warping, discrete Fréchet).
//
// All proximity computations use the same synchronized-movement model as the
// paper's error notion: both objects travel their piecewise-linear
// trajectories in real time, so relative position is piecewise-linear in t
// and squared separation is piecewise-quadratic — minima and threshold
// crossings have closed forms.
package analysis

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/trajectory"
)

// ErrNoOverlap is returned when two trajectories share no time span.
var ErrNoOverlap = errors.New("analysis: trajectories share no time overlap")

// Interval is a closed time interval [T0, T1].
type Interval struct {
	T0, T1 float64
}

// Duration returns the interval length.
func (iv Interval) Duration() float64 { return iv.T1 - iv.T0 }

// DistanceAt returns the separation of the two objects at time t; ok is
// false when t is outside either trajectory's span.
func DistanceAt(p, q trajectory.Trajectory, t float64) (float64, bool) {
	pp, ok1 := p.LocAt(t)
	qq, ok2 := q.LocAt(t)
	if !ok1 || !ok2 {
		return 0, false
	}
	return pp.Dist(qq), true
}

// ClosestApproach returns the time and separation of the two objects'
// minimal distance over their overlapping time span.
func ClosestApproach(p, q trajectory.Trajectory) (at, dist float64, err error) {
	cuts, err := sharedCuts(p, q)
	if err != nil {
		return 0, 0, err
	}
	best := math.Inf(1)
	bestT := cuts[0]
	for i := 0; i+1 < len(cuts); i++ {
		t0, t1 := cuts[i], cuts[i+1]
		c := relQuadratic(p, q, t0, t1)
		// Candidates: interval ends and the interior vertex of the
		// quadratic (if any).
		for _, t := range c.candidates(t0, t1) {
			if d2 := c.at(t); d2 < best {
				best, bestT = d2, t
			}
		}
	}
	return bestT, math.Sqrt(best), nil
}

// Within returns the maximal time intervals during which the two objects
// are within d of each other (boundary contact counts). Intervals are
// sorted and disjoint.
func Within(p, q trajectory.Trajectory, d float64) ([]Interval, error) {
	if d < 0 {
		return nil, fmt.Errorf("analysis: negative distance %v", d)
	}
	cuts, err := sharedCuts(p, q)
	if err != nil {
		return nil, err
	}
	var out []Interval
	add := func(t0, t1 float64) {
		if n := len(out); n > 0 && t0 <= out[n-1].T1 {
			if t1 > out[n-1].T1 {
				out[n-1].T1 = t1
			}
			return
		}
		out = append(out, Interval{t0, t1})
	}
	d2 := d * d
	for i := 0; i+1 < len(cuts); i++ {
		t0, t1 := cuts[i], cuts[i+1]
		c := relQuadratic(p, q, t0, t1)
		for _, iv := range c.below(d2, t0, t1) {
			add(iv.T0, iv.T1)
		}
	}
	return out, nil
}

// Meets reports whether the two objects ever come within d of each other,
// with the first such time.
func Meets(p, q trajectory.Trajectory, d float64) (bool, float64, error) {
	ivs, err := Within(p, q, d)
	if err != nil {
		return false, 0, err
	}
	if len(ivs) == 0 {
		return false, 0, nil
	}
	return true, ivs[0].T0, nil
}

// quad is the squared-separation quadratic d²(t) = A·t² + B·t + C on one
// elementary interval.
type quad struct{ A, B, C float64 }

func (c quad) at(t float64) float64 { return (c.A*t+c.B)*t + c.C }

// candidates returns the times where the minimum over [t0, t1] can occur.
func (c quad) candidates(t0, t1 float64) []float64 {
	out := []float64{t0, t1}
	if c.A > 0 {
		if v := -c.B / (2 * c.A); v > t0 && v < t1 {
			out = append(out, v)
		}
	}
	return out
}

// below returns the sub-intervals of [t0, t1] where d²(t) ≤ d2.
func (c quad) below(d2, t0, t1 float64) []Interval {
	f0 := c.at(t0) - d2
	f1 := c.at(t1) - d2
	if c.A <= 1e-18*(math.Abs(c.B)+math.Abs(c.C)+d2) {
		// Effectively linear in t (relative velocity ≈ 0 gives constant).
		return linearBelow(f0, f1, t0, t1)
	}
	// Roots of A·t² + B·t + (C − d2) = 0.
	disc := c.B*c.B - 4*c.A*(c.C-d2)
	if disc < 0 {
		if f0 <= 0 { // entirely below (A > 0 and no crossing)
			return []Interval{{t0, t1}}
		}
		return nil
	}
	s := math.Sqrt(disc)
	r0 := (-c.B - s) / (2 * c.A)
	r1 := (-c.B + s) / (2 * c.A)
	lo := math.Max(t0, r0)
	hi := math.Min(t1, r1)
	if lo >= hi {
		// The below-region [r0, r1] misses the interval, except possibly a
		// touching point.
		//lint:allow floatcmp degenerate-case guard: lo == hi is a touching point after clamping
		if lo == hi {
			return []Interval{{lo, hi}}
		}
		return nil
	}
	return []Interval{{lo, hi}}
}

func linearBelow(f0, f1, t0, t1 float64) []Interval {
	switch {
	case f0 <= 0 && f1 <= 0:
		return []Interval{{t0, t1}}
	case f0 > 0 && f1 > 0:
		return nil
	default:
		// Single crossing.
		cross := t0 + (t1-t0)*(f0/(f0-f1))
		if f0 <= 0 {
			return []Interval{{t0, cross}}
		}
		return []Interval{{cross, t1}}
	}
}

// relQuadratic builds the squared-separation quadratic for an elementary
// interval [t0, t1] on which both trajectories are linear.
func relQuadratic(p, q trajectory.Trajectory, t0, t1 float64) quad {
	pa, _ := p.LocAt(t0)
	pb, _ := p.LocAt(t1)
	qa, _ := q.LocAt(t0)
	qb, _ := q.LocAt(t1)
	h := t1 - t0
	// Relative position r(t) = r0 + v·(t − t0).
	r0x, r0y := pa.X-qa.X, pa.Y-qa.Y
	vx := ((pb.X - qb.X) - r0x) / h
	vy := ((pb.Y - qb.Y) - r0y) / h
	// d²(t) = |r0 + v·(t−t0)|², expanded in absolute t.
	// Substitute u = t − t0: A·u² + B'·u + C', then shift.
	A := vx*vx + vy*vy
	Bp := 2 * (r0x*vx + r0y*vy)
	Cp := r0x*r0x + r0y*r0y
	// In absolute t: A·t² + (B' − 2A·t0)·t + (A·t0² − B'·t0 + C').
	return quad{
		A: A,
		B: Bp - 2*A*t0,
		C: (A*t0-Bp)*t0 + Cp,
	}
}

// sharedCuts merges the vertex times of p and q over their overlap.
func sharedCuts(p, q trajectory.Trajectory) ([]float64, error) {
	if p.Len() < 2 || q.Len() < 2 {
		return nil, fmt.Errorf("analysis: need at least 2 samples in both trajectories (have %d and %d)", p.Len(), q.Len())
	}
	t0 := math.Max(p.StartTime(), q.StartTime())
	t1 := math.Min(p.EndTime(), q.EndTime())
	if t1 <= t0 {
		return nil, ErrNoOverlap
	}
	cuts := []float64{t0, t1}
	for _, s := range p {
		if s.T > t0 && s.T < t1 {
			cuts = append(cuts, s.T)
		}
	}
	for _, s := range q {
		if s.T > t0 && s.T < t1 {
			cuts = append(cuts, s.T)
		}
	}
	sort.Float64s(cuts)
	out := cuts[:1]
	for _, c := range cuts[1:] {
		//lint:allow floatcmp deduplication of exactly equal cut times
		if c != out[len(out)-1] {
			out = append(out, c)
		}
	}
	return out, nil
}
