package analysis

import (
	"math/rand"
	"testing"

	"repro/internal/compress"
	"repro/internal/gpsgen"
	"repro/internal/trajectory"
)

func trips() (a, b trajectory.Trajectory) {
	g := gpsgen.New(41, gpsgen.Config{})
	return g.Trip(gpsgen.Urban, 900), g.Trip(gpsgen.Urban, 900)
}

func TestDTWIdentity(t *testing.T) {
	a, _ := trips()
	d, err := DTW(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("DTW(a,a) = %v, want 0", d)
	}
}

func TestDTWSymmetry(t *testing.T) {
	a, b := trips()
	d1, err := DTW(a, b)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := DTW(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(d1, d2, 1e-6*(1+d1)) {
		t.Errorf("DTW asymmetric: %v vs %v", d1, d2)
	}
	if d1 <= 0 {
		t.Errorf("distinct trips have DTW %v", d1)
	}
}

func TestDTWKnownAlignment(t *testing.T) {
	// b repeats a's points (time-warped duplicate): DTW must be 0 even
	// though the sequences have different lengths.
	a := trajectory.MustNew([]trajectory.Sample{
		trajectory.S(0, 0, 0), trajectory.S(1, 10, 0), trajectory.S(2, 20, 0),
	})
	b := trajectory.MustNew([]trajectory.Sample{
		trajectory.S(0, 0, 0), trajectory.S(1, 0, 0.0), trajectory.S(2, 10, 0), trajectory.S(3, 20, 0),
	})
	d, err := DTW(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("time-warped duplicate has DTW %v, want 0", d)
	}
}

func TestDTWWindowed(t *testing.T) {
	a, b := trips()
	full, err := DTW(a, b)
	if err != nil {
		t.Fatal(err)
	}
	banded, err := DTWWindowed(a, b, 20)
	if err != nil {
		t.Fatal(err)
	}
	// A band restricts alignments, so the result can only grow.
	if banded < full-1e-6 {
		t.Errorf("banded DTW %v below unconstrained %v", banded, full)
	}
	if _, err := DTWWindowed(a, b, -1); err == nil {
		t.Error("negative window accepted")
	}
	if _, err := DTW(trajectory.Trajectory{}, b); err == nil {
		t.Error("empty trajectory accepted")
	}
}

func TestFrechetBasics(t *testing.T) {
	a, b := trips()
	if d, err := Frechet(a, a); err != nil || d != 0 {
		t.Errorf("Frechet(a,a) = %v, %v", d, err)
	}
	d1, err := Frechet(a, b)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Frechet(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(d1, d2, 1e-9) {
		t.Errorf("Fréchet asymmetric: %v vs %v", d1, d2)
	}
	if _, err := Frechet(a, trajectory.Trajectory{}); err == nil {
		t.Error("empty trajectory accepted")
	}
}

func TestFrechetParallelLines(t *testing.T) {
	// Two parallel straight lines 25 m apart: Fréchet distance is exactly
	// the offset.
	var a, b trajectory.Trajectory
	for i := 0; i < 10; i++ {
		a = append(a, trajectory.S(float64(i), float64(i*10), 0))
		b = append(b, trajectory.S(float64(i), float64(i*10), 25))
	}
	d, err := Frechet(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(d, 25, 1e-9) {
		t.Errorf("Fréchet = %v, want 25", d)
	}
}

// Fréchet lower-bounds nothing in general, but it is always ≤ DTW only when
// DTW is ≥ the max matched pair; instead check the weaker standard
// relation: Fréchet ≤ sum alignments' max ≤ DTW total when all distances
// are non-negative and the path length ≥ 1. Concretely, DTW (a sum) is at
// least the Fréchet (a max over the same optimal path family).
func TestFrechetLEQDTWProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		a := randTraj(rng, 5+rng.Intn(30))
		b := randTraj(rng, 5+rng.Intn(30))
		fr, err := Frechet(a, b)
		if err != nil {
			t.Fatal(err)
		}
		dtw, err := DTW(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if fr > dtw+1e-9 {
			t.Fatalf("Fréchet %v exceeds DTW %v", fr, dtw)
		}
	}
}

// Compression preserves the path under the synchronized-movement view:
// resampling the compressed trajectory at the original timestamps (linear
// interpolation = synchronized positions) keeps the discrete Fréchet
// distance within the TD-TR threshold. The raw discrete Fréchet against the
// sparse vertex sequence is NOT small — discrete Fréchet does not
// interpolate — which is precisely why the paper's synchronized error
// notion exists.
func TestSimilarityStableUnderCompression(t *testing.T) {
	a, _ := trips()
	const eps = 30.0
	c := compress.TDTR{Threshold: eps}.Compress(a)

	resampled := make(trajectory.Trajectory, 0, a.Len())
	for _, s := range a {
		if rs, ok := c.SampleAt(s.T); ok {
			resampled = append(resampled, rs)
		}
	}
	fr, err := Frechet(a, resampled)
	if err != nil {
		t.Fatal(err)
	}
	if fr > eps+1e-9 {
		t.Errorf("Fréchet(a, synchronized resample) = %v, want ≤ %v", fr, eps)
	}
}

func TestLCSS(t *testing.T) {
	a, b := trips()
	// Identity: full match.
	if s, err := LCSS(a, a, 1); err != nil || s != 1 {
		t.Errorf("LCSS(a,a) = %v, %v", s, err)
	}
	// Symmetry.
	s1, err := LCSS(a, b, 100)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := LCSS(b, a, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(s1, s2, 1e-12) {
		t.Errorf("LCSS asymmetric: %v vs %v", s1, s2)
	}
	if s1 < 0 || s1 > 1 {
		t.Errorf("LCSS out of range: %v", s1)
	}
	// A looser eps matches at least as much.
	s3, err := LCSS(a, b, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if s3 < s1 {
		t.Errorf("looser eps matched less: %v < %v", s3, s1)
	}
	// Validation.
	if _, err := LCSS(a, trajectory.Trajectory{}, 10); err == nil {
		t.Error("empty trajectory accepted")
	}
	if _, err := LCSS(a, b, 0); err == nil {
		t.Error("zero eps accepted")
	}
}

// LCSS is robust to a single wild outlier where DTW is not: the outlier
// merely fails to match.
func TestLCSSOutlierRobust(t *testing.T) {
	var a, b trajectory.Trajectory
	for i := 0; i < 20; i++ {
		a = append(a, trajectory.S(float64(i), float64(i*10), 0))
		y := 0.0
		if i == 10 {
			y = 1e6 // wild GPS glitch
		}
		b = append(b, trajectory.S(float64(i), float64(i*10), y))
	}
	s, err := LCSS(a, b, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.9 {
		t.Errorf("LCSS = %v, want ≥ 0.9 despite one glitch", s)
	}
	d, err := DTW(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d < 1e5 {
		t.Errorf("DTW = %v, expected to be dominated by the glitch", d)
	}
}

func BenchmarkDTW(b *testing.B) {
	p, q := trips()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DTW(p, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrechet(b *testing.B) {
	p, q := trips()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Frechet(p, q); err != nil {
			b.Fatal(err)
		}
	}
}

func randTraj(rng *rand.Rand, n int) trajectory.Trajectory {
	p := make(trajectory.Trajectory, n)
	t, x, y := 0.0, rng.NormFloat64()*100, rng.NormFloat64()*100
	for i := 0; i < n; i++ {
		p[i] = trajectory.S(t, x, y)
		t += 1 + rng.Float64()*5
		x += rng.NormFloat64() * 50
		y += rng.NormFloat64() * 50
	}
	return p
}
