package analysis

import (
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/trajectory"
)

// Heatmap is a spatial density grid: object-seconds spent per square cell —
// the congestion picture of the paper's rush-hour analysis.
type Heatmap struct {
	// Cell is the cell edge length in metres.
	Cell float64
	// Weights maps cell indices (floor(x/Cell), floor(y/Cell)) to the
	// accumulated object-seconds spent inside.
	Weights map[[2]int]float64
}

// Density builds a heatmap over the trajectories for the window [t0, t1]:
// every dt seconds, each live object deposits dt object-seconds into the
// cell under its interpolated position.
func Density(ps []trajectory.Trajectory, cell, t0, t1, dt float64) (*Heatmap, error) {
	if cell <= 0 || dt <= 0 || t1 < t0 {
		return nil, fmt.Errorf("analysis: invalid heatmap parameters (cell %v, dt %v, window [%v, %v])", cell, dt, t0, t1)
	}
	h := &Heatmap{Cell: cell, Weights: make(map[[2]int]float64)}
	for _, p := range ps {
		if p.Len() < 2 {
			continue
		}
		lo := math.Max(t0, p.StartTime())
		hi := math.Min(t1, p.EndTime())
		// Step by index: accumulating t += dt drifts at Unix-epoch-scale
		// timestamps and can drop the final deposit of the window.
		for i := 0; ; i++ {
			t := lo + float64(i)*dt
			if t > hi {
				break
			}
			pos, ok := p.LocAt(t)
			if !ok {
				continue
			}
			key := [2]int{int(math.Floor(pos.X / cell)), int(math.Floor(pos.Y / cell))}
			h.Weights[key] += dt
		}
	}
	return h, nil
}

// Max returns the largest cell weight (0 for an empty map).
func (h *Heatmap) Max() float64 {
	var m float64
	for _, w := range h.Weights {
		if w > m {
			m = w
		}
	}
	return m
}

// Total returns the sum of all cell weights.
func (h *Heatmap) Total() float64 {
	var s float64
	for _, w := range h.Weights {
		s += w
	}
	return s
}

// Hotspots returns the k heaviest cells as centre points with their
// weights, ordered by decreasing weight.
func (h *Heatmap) Hotspots(k int) []Hotspot {
	out := make([]Hotspot, 0, len(h.Weights))
	for key, w := range h.Weights {
		out = append(out, Hotspot{
			Center: geo.Pt((float64(key[0])+0.5)*h.Cell, (float64(key[1])+0.5)*h.Cell),
			Weight: w,
		})
	}
	// Selection sort of the top k keeps this dependency-free and the maps
	// involved are small.
	for i := 0; i < len(out) && i < k; i++ {
		best := i
		for j := i + 1; j < len(out); j++ {
			if out[j].Weight > out[best].Weight ||
				//lint:allow floatcmp deterministic top-k tie-break on identical weights
				(out[j].Weight == out[best].Weight && less(out[j].Center, out[best].Center)) {
				best = j
			}
		}
		out[i], out[best] = out[best], out[i]
	}
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func less(a, b geo.Point) bool {
	//lint:allow floatcmp deterministic coordinate tie-break for stable ordering
	if a.X != b.X {
		return a.X < b.X
	}
	return a.Y < b.Y
}

// Hotspot is one high-density cell.
type Hotspot struct {
	Center geo.Point
	Weight float64 // object-seconds
}
