package analysis

import (
	"testing"

	"repro/internal/trajectory"
)

func tripBetween(t0 float64, ox, oy, dx, dy float64) trajectory.Trajectory {
	return trajectory.MustNew([]trajectory.Sample{
		trajectory.S(t0, ox, oy),
		trajectory.S(t0+100, (ox+dx)/2, (oy+dy)/2),
		trajectory.S(t0+200, dx, dy),
	})
}

func TestOriginDestination(t *testing.T) {
	// Three trips zone (0,0) → zone (2,0); one reverse; one elsewhere.
	ps := []trajectory.Trajectory{
		tripBetween(0, 100, 100, 2500, 100),
		tripBetween(0, 200, 300, 2700, 400),
		tripBetween(0, 50, 50, 2100, 900),
		tripBetween(0, 2500, 100, 100, 100),
		tripBetween(0, 9000, 9000, 9100, 9100),
		{trajectory.S(0, 0, 0)}, // degenerate: skipped
	}
	m, err := OriginDestination(ps, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if m.Trips() != 5 {
		t.Errorf("Trips = %d, want 5", m.Trips())
	}
	flows := m.TopFlows(2)
	if len(flows) != 2 {
		t.Fatalf("TopFlows = %v", flows)
	}
	if flows[0].Count != 3 {
		t.Errorf("top flow count = %d, want 3", flows[0].Count)
	}
	if flows[0].Origin.X != 500 || flows[0].Dest.X != 2500 {
		t.Errorf("top flow %v, want zone(0,0)→zone(2,0) centres", flows[0])
	}
	// k beyond the number of distinct flows.
	if got := m.TopFlows(100); len(got) != 3 {
		t.Errorf("TopFlows(100) = %d flows, want 3", len(got))
	}
	if _, err := OriginDestination(ps, 0); err == nil {
		t.Error("zero zone accepted")
	}
}
