package analysis

import (
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/trajectory"
)

// Stop is a detected stay: a maximal period during which the object's
// derived speed stays below the detection threshold.
type Stop struct {
	Interval
	// Center is the mean position of the samples inside the stay.
	Center geo.Point
}

// Stops detects stays in a trajectory: maximal runs of consecutive segments
// whose derived speed is below maxSpeed (m/s), lasting at least minDuration
// seconds. Traffic lights, parking and loading stops in the paper's
// commuter scenario surface as Stops.
func Stops(p trajectory.Trajectory, maxSpeed, minDuration float64) ([]Stop, error) {
	if maxSpeed <= 0 || minDuration < 0 {
		return nil, fmt.Errorf("analysis: invalid stop parameters (maxSpeed %v, minDuration %v)", maxSpeed, minDuration)
	}
	var out []Stop
	i := 0
	for i < p.Len()-1 {
		if p.SegmentSpeed(i) >= maxSpeed {
			i++
			continue
		}
		j := i
		for j < p.Len()-1 && p.SegmentSpeed(j) < maxSpeed {
			j++
		}
		// Slow run covers samples i..j.
		if dur := p[j].T - p[i].T; dur >= minDuration {
			var cx, cy float64
			for k := i; k <= j; k++ {
				cx += p[k].X
				cy += p[k].Y
			}
			n := float64(j - i + 1)
			out = append(out, Stop{
				Interval: Interval{T0: p[i].T, T1: p[j].T},
				Center:   geo.Pt(cx/n, cy/n),
			})
		}
		i = j
	}
	return out, nil
}

// StoppedTime returns the total duration of the detected stops.
func StoppedTime(stops []Stop) float64 {
	var total float64
	for _, s := range stops {
		total += s.Duration()
	}
	return total
}

// ProfilePoint is one segment of a movement profile.
type ProfilePoint struct {
	T       float64 // segment midpoint time
	Speed   float64 // derived speed, m/s
	Heading float64 // direction of travel, radians CCW from east
}

// Profile derives the per-segment speed and heading series of a trajectory
// — the raw material of the paper's rush-hour analyses.
func Profile(p trajectory.Trajectory) []ProfilePoint {
	if p.Len() < 2 {
		return nil
	}
	out := make([]ProfilePoint, p.Len()-1)
	for i := 0; i+1 < p.Len(); i++ {
		out[i] = ProfilePoint{
			T:       (p[i].T + p[i+1].T) / 2,
			Speed:   p.SegmentSpeed(i),
			Heading: p[i].Pos().Bearing(p[i+1].Pos()),
		}
	}
	return out
}

// SpeedPercentiles returns the requested percentiles (each in [0, 100]) of
// the time-weighted derived speed distribution.
func SpeedPercentiles(p trajectory.Trajectory, percentiles []float64) ([]float64, error) {
	if p.Len() < 2 {
		return nil, fmt.Errorf("analysis: need at least 2 samples, have %d", p.Len())
	}
	type wv struct{ v, w float64 }
	items := make([]wv, p.Len()-1)
	var totalW float64
	for i := range items {
		w := p[i+1].T - p[i].T
		items[i] = wv{v: p.SegmentSpeed(i), w: w}
		totalW += w
	}
	// Sort by speed, then walk the cumulative weight.
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && items[j].v < items[j-1].v; j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
	out := make([]float64, len(percentiles))
	for k, pc := range percentiles {
		if pc < 0 || pc > 100 || math.IsNaN(pc) {
			return nil, fmt.Errorf("analysis: percentile %v outside [0, 100]", pc)
		}
		target := pc / 100 * totalW
		var acc float64
		val := items[len(items)-1].v
		for _, it := range items {
			acc += it.w
			if acc >= target {
				val = it.v
				break
			}
		}
		out[k] = val
	}
	return out, nil
}
