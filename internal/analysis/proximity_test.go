package analysis

import (
	"errors"
	"math"
	"testing"

	"repro/internal/trajectory"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

// Two objects crossing an intersection perpendicularly: p eastbound along
// y=0, q northbound along x=100, both passing the crossing at t=10.
func crossing() (p, q trajectory.Trajectory) {
	p = trajectory.MustNew([]trajectory.Sample{
		trajectory.S(0, 0, 0), trajectory.S(20, 200, 0),
	})
	q = trajectory.MustNew([]trajectory.Sample{
		trajectory.S(0, 100, -100), trajectory.S(20, 100, 100),
	})
	return
}

func TestDistanceAt(t *testing.T) {
	p, q := crossing()
	if d, ok := DistanceAt(p, q, 10); !ok || !almostEq(d, 0, 1e-9) {
		t.Errorf("DistanceAt(10) = %v, %v; want 0", d, ok)
	}
	if d, ok := DistanceAt(p, q, 0); !ok || !almostEq(d, math.Hypot(100, 100), 1e-9) {
		t.Errorf("DistanceAt(0) = %v, %v", d, ok)
	}
	if _, ok := DistanceAt(p, q, 25); ok {
		t.Error("time outside span answered")
	}
}

func TestClosestApproachCrossing(t *testing.T) {
	p, q := crossing()
	at, dist, err := ClosestApproach(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(at, 10, 1e-9) || !almostEq(dist, 0, 1e-9) {
		t.Errorf("ClosestApproach = t=%v d=%v, want t=10 d=0", at, dist)
	}
}

func TestClosestApproachParallel(t *testing.T) {
	// Parallel motion 30 m apart: constant separation; any time is minimal.
	p := trajectory.MustNew([]trajectory.Sample{trajectory.S(0, 0, 0), trajectory.S(10, 100, 0)})
	q := trajectory.MustNew([]trajectory.Sample{trajectory.S(0, 0, 30), trajectory.S(10, 100, 30)})
	_, dist, err := ClosestApproach(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(dist, 30, 1e-9) {
		t.Errorf("parallel closest = %v, want 30", dist)
	}
}

func TestClosestApproachMultiSegment(t *testing.T) {
	// q dwells at (50, 40); p passes by along y=0: nearest at x=50, t=5.
	p := trajectory.MustNew([]trajectory.Sample{
		trajectory.S(0, 0, 0), trajectory.S(5, 50, 0), trajectory.S(10, 100, 0),
	})
	q := trajectory.MustNew([]trajectory.Sample{
		trajectory.S(0, 50, 40), trajectory.S(10, 50, 40.0001),
	})
	at, dist, err := ClosestApproach(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(at, 5, 1e-3) || !almostEq(dist, 40, 1e-3) {
		t.Errorf("ClosestApproach = t=%v d=%v, want t≈5 d≈40", at, dist)
	}
}

func TestWithinCrossing(t *testing.T) {
	p, q := crossing()
	// Separation is √2·10·|t−10| m, so within 50 m for |t−10| ≤ 50/(10√2).
	ivs, err := Within(p, q, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 1 {
		t.Fatalf("Within = %v, want one interval", ivs)
	}
	half := 50 / (10 * math.Sqrt2)
	if !almostEq(ivs[0].T0, 10-half, 1e-6) || !almostEq(ivs[0].T1, 10+half, 1e-6) {
		t.Errorf("interval = %+v, want 10±%.3f", ivs[0], half)
	}
}

func TestWithinNever(t *testing.T) {
	p := trajectory.MustNew([]trajectory.Sample{trajectory.S(0, 0, 0), trajectory.S(10, 100, 0)})
	q := trajectory.MustNew([]trajectory.Sample{trajectory.S(0, 0, 500), trajectory.S(10, 100, 500)})
	ivs, err := Within(p, q, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 0 {
		t.Errorf("Within = %v, want none", ivs)
	}
	met, _, err := Meets(p, q, 50)
	if err != nil {
		t.Fatal(err)
	}
	if met {
		t.Error("Meets reported an encounter")
	}
}

func TestWithinAlways(t *testing.T) {
	p := trajectory.MustNew([]trajectory.Sample{trajectory.S(0, 0, 0), trajectory.S(10, 100, 0)})
	q := trajectory.MustNew([]trajectory.Sample{trajectory.S(0, 0, 10), trajectory.S(10, 100, 10)})
	ivs, err := Within(p, q, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 1 || !almostEq(ivs[0].T0, 0, 1e-9) || !almostEq(ivs[0].T1, 10, 1e-9) {
		t.Errorf("Within = %v, want the whole span", ivs)
	}
}

func TestWithinMergesAcrossVertices(t *testing.T) {
	// A multi-vertex original continuously near q must yield ONE interval,
	// not one per segment.
	p := trajectory.MustNew([]trajectory.Sample{
		trajectory.S(0, 0, 0), trajectory.S(5, 50, 2), trajectory.S(10, 100, 0),
	})
	q := trajectory.MustNew([]trajectory.Sample{
		trajectory.S(0, 0, 5), trajectory.S(10, 100, 5),
	})
	ivs, err := Within(p, q, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 1 {
		t.Errorf("Within returned %d intervals, want 1 merged: %v", len(ivs), ivs)
	}
}

func TestMeetsFirstTime(t *testing.T) {
	p, q := crossing()
	met, at, err := Meets(p, q, 50)
	if err != nil {
		t.Fatal(err)
	}
	half := 50 / (10 * math.Sqrt2)
	if !met || !almostEq(at, 10-half, 1e-6) {
		t.Errorf("Meets = %v at %v, want true at %v", met, at, 10-half)
	}
}

func TestProximityValidation(t *testing.T) {
	p, _ := crossing()
	short := trajectory.Trajectory{trajectory.S(0, 0, 0)}
	if _, _, err := ClosestApproach(p, short); err == nil {
		t.Error("degenerate trajectory accepted")
	}
	disjoint := p.Shift(1000, 0, 0)
	if _, err := Within(p, disjoint, 10); !errors.Is(err, ErrNoOverlap) {
		t.Errorf("disjoint spans: %v", err)
	}
	if _, err := Within(p, p, -1); err == nil {
		t.Error("negative distance accepted")
	}
}
