package analysis

import (
	"math"
	"testing"

	"repro/internal/trajectory"
)

func TestDensityBasics(t *testing.T) {
	// An object parked at (50, 50) for 100 s: all weight in one cell.
	parked := trajectory.MustNew([]trajectory.Sample{
		trajectory.S(0, 50, 50), trajectory.S(100, 50.001, 50),
	})
	h, err := Density([]trajectory.Trajectory{parked}, 100, 0, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Weights) != 1 {
		t.Fatalf("weights spread over %d cells", len(h.Weights))
	}
	if w := h.Weights[[2]int{0, 0}]; math.Abs(w-101) > 1.5 {
		t.Errorf("cell weight %v, want ≈100", w)
	}
	if h.Max() != h.Total() {
		t.Errorf("Max %v != Total %v for single cell", h.Max(), h.Total())
	}
}

func TestDensityMovingObject(t *testing.T) {
	// Constant-speed eastbound across 4 cells: roughly equal weights.
	var p trajectory.Trajectory
	for i := 0; i <= 40; i++ {
		p = append(p, trajectory.S(float64(i*10), float64(i*10), 5))
	}
	h, err := Density([]trajectory.Trajectory{p}, 100, 0, 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Weights) < 4 {
		t.Fatalf("expected ≥4 cells, got %d", len(h.Weights))
	}
	if tot := h.Total(); math.Abs(tot-401) > 2 {
		t.Errorf("total weight %v, want ≈400", tot)
	}
}

func TestDensityWindow(t *testing.T) {
	p := trajectory.MustNew([]trajectory.Sample{
		trajectory.S(0, 0, 0), trajectory.S(1000, 10000, 0),
	})
	h, err := Density([]trajectory.Trajectory{p}, 100, 0, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Only the first 100 s count: total ≈ 100.
	if tot := h.Total(); math.Abs(tot-101) > 2 {
		t.Errorf("windowed total %v, want ≈100", tot)
	}
}

func TestHotspots(t *testing.T) {
	// Two parked objects, one dwelling twice as long.
	long := trajectory.MustNew([]trajectory.Sample{
		trajectory.S(0, 50, 50), trajectory.S(200, 50.001, 50),
	})
	short := trajectory.MustNew([]trajectory.Sample{
		trajectory.S(0, 550, 50), trajectory.S(100, 550.001, 50),
	})
	h, err := Density([]trajectory.Trajectory{long, short}, 100, 0, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	hs := h.Hotspots(2)
	if len(hs) != 2 {
		t.Fatalf("hotspots = %v", hs)
	}
	if hs[0].Weight <= hs[1].Weight {
		t.Errorf("hotspots not ordered: %v", hs)
	}
	if hs[0].Center.X != 50 {
		t.Errorf("top hotspot at %v, want x=50 cell centre", hs[0].Center)
	}
	// k larger than cells.
	if got := h.Hotspots(99); len(got) < 2 {
		t.Errorf("oversized k lost cells: %v", got)
	}
}

func TestDensityValidation(t *testing.T) {
	if _, err := Density(nil, 0, 0, 1, 1); err == nil {
		t.Error("zero cell accepted")
	}
	if _, err := Density(nil, 1, 0, 1, 0); err == nil {
		t.Error("zero dt accepted")
	}
	if _, err := Density(nil, 1, 5, 1, 1); err == nil {
		t.Error("inverted window accepted")
	}
	// Empty input: valid, empty map.
	h, err := Density(nil, 100, 0, 10, 1)
	if err != nil || len(h.Weights) != 0 {
		t.Errorf("empty input: %v, %v", h, err)
	}
}

func BenchmarkDensity(b *testing.B) {
	ps := make([]trajectory.Trajectory, 10)
	for i := range ps {
		var p trajectory.Trajectory
		for j := 0; j < 200; j++ {
			p = append(p, trajectory.S(float64(j*10), float64(j*50+i*13), float64(i*200)))
		}
		ps[i] = p
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Density(ps, 250, 0, 2000, 10); err != nil {
			b.Fatal(err)
		}
	}
}
