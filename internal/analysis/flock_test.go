package analysis

import (
	"testing"

	"repro/internal/trajectory"
)

// eastbound builds a constant-speed eastbound track at offset y, optionally
// starting late.
func eastbound(y, t0 float64, n int) trajectory.Trajectory {
	var p trajectory.Trajectory
	for i := 0; i < n; i++ {
		p = append(p, trajectory.S(t0+float64(i*10), float64(i*100), y))
	}
	return p
}

func TestFlocksDetectsConvoy(t *testing.T) {
	// Objects 0 and 1 travel 20 m apart the whole time; object 2 is far
	// away.
	ps := []trajectory.Trajectory{
		eastbound(0, 0, 20),
		eastbound(20, 0, 20),
		eastbound(5000, 0, 20),
	}
	flocks, err := Flocks(ps, 50, 2, 60, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(flocks) != 1 {
		t.Fatalf("flocks = %+v, want one", flocks)
	}
	f := flocks[0]
	if len(f.Members) != 2 || f.Members[0] != 0 || f.Members[1] != 1 {
		t.Errorf("members = %v, want [0 1]", f.Members)
	}
	if f.Duration() < 180 {
		t.Errorf("flock lasted only %.0f s", f.Duration())
	}
}

func TestFlocksTransitiveComponent(t *testing.T) {
	// Chain: A within 50 of B, B within 50 of C, A and C 80 apart — one
	// connected component of size 3.
	ps := []trajectory.Trajectory{
		eastbound(0, 0, 10),
		eastbound(40, 0, 10),
		eastbound(80, 0, 10),
	}
	flocks, err := Flocks(ps, 50, 3, 50, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(flocks) != 1 || len(flocks[0].Members) != 3 {
		t.Fatalf("flocks = %+v, want one of size 3", flocks)
	}
}

func TestFlocksMinDurationFilters(t *testing.T) {
	// Two crossing objects: proximity lasts only a moment.
	a := trajectory.MustNew([]trajectory.Sample{
		trajectory.S(0, 0, 0), trajectory.S(100, 10000, 0),
	})
	b := trajectory.MustNew([]trajectory.Sample{
		trajectory.S(0, 5000, -5000), trajectory.S(100, 5000, 5000),
	})
	flocks, err := Flocks([]trajectory.Trajectory{a, b}, 100, 2, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(flocks) != 0 {
		t.Errorf("momentary crossing reported as flock: %+v", flocks)
	}
}

func TestFlocksLateJoiner(t *testing.T) {
	// Object 2 joins the convoy halfway: the pair flock and the trio flock
	// both appear.
	ps := []trajectory.Trajectory{
		eastbound(0, 0, 30),
		eastbound(20, 0, 30),
		eastbound(10, 150, 15), // starts at t=150, spatially inside the convoy
	}
	// Align the late joiner's x positions with the convoy at its times.
	late := make(trajectory.Trajectory, 0, 15)
	for i := 0; i < 15; i++ {
		tt := 150 + float64(i*10)
		late = append(late, trajectory.S(tt, tt*10, 10))
	}
	ps[2] = late

	flocks, err := Flocks(ps, 50, 2, 50, 10)
	if err != nil {
		t.Fatal(err)
	}
	var sizes []int
	for _, f := range flocks {
		sizes = append(sizes, len(f.Members))
	}
	if len(flocks) < 2 {
		t.Fatalf("expected pair and trio phases, got %+v (sizes %v)", flocks, sizes)
	}
	foundTrio := false
	for _, f := range flocks {
		if len(f.Members) == 3 && f.Duration() >= 50 {
			foundTrio = true
		}
	}
	if !foundTrio {
		t.Errorf("trio phase not detected: %+v", flocks)
	}
}

func TestFlocksValidation(t *testing.T) {
	ps := []trajectory.Trajectory{eastbound(0, 0, 5), eastbound(10, 0, 5)}
	if _, err := Flocks(ps, 0, 2, 10, 1); err == nil {
		t.Error("zero radius accepted")
	}
	if _, err := Flocks(ps, 10, 1, 10, 1); err == nil {
		t.Error("minSize 1 accepted")
	}
	if _, err := Flocks(ps, 10, 2, 10, 0); err == nil {
		t.Error("zero dt accepted")
	}
	// Fewer objects than minSize: no error, no flocks.
	if flocks, err := Flocks(ps[:1], 10, 2, 10, 1); err != nil || flocks != nil {
		t.Errorf("underpopulated input: %v, %v", flocks, err)
	}
}

func BenchmarkFlocks(b *testing.B) {
	ps := make([]trajectory.Trajectory, 12)
	for i := range ps {
		ps[i] = eastbound(float64(i*30), 0, 120)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Flocks(ps, 50, 3, 60, 10); err != nil {
			b.Fatal(err)
		}
	}
}
