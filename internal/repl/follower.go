package repl

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/wal"
)

// FollowerOptions tunes a Follower's connection management.
type FollowerOptions struct {
	// DialTimeout bounds each connection attempt to the primary.
	DialTimeout time.Duration
	// ReadTimeout is the per-frame read deadline; it must exceed the
	// primary's ping interval or an idle stream looks dead.
	ReadTimeout time.Duration
	// WriteTimeout is the per-ACK write deadline.
	WriteTimeout time.Duration
	// BackoffBase/BackoffMax shape the reconnect backoff.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Metrics receives the repl_* instruments (nil: the default registry).
	Metrics *metrics.Registry
}

func (o FollowerOptions) withDefaults() FollowerOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = defaultDialTimeout
	}
	if o.ReadTimeout <= 0 {
		o.ReadTimeout = defaultReadTimeout
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = defaultWriteTimeout
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = defaultBackoffBase
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = defaultBackoffMax
	}
	return o
}

// Follower is the receiving side of replication: it keeps a REPLICATE
// stream open to the primary (reconnecting with backoff after any error,
// including being shed for lag), applies the record stream through its own
// DurableStore, and acknowledges each applied batch with its durable offset.
// The store is held in replica mode — writes fail with wal.ErrReplica —
// until Promote.
type Follower struct {
	store *wal.DurableStore
	addr  string
	opts  FollowerOptions
	ins   *instruments

	mu       sync.Mutex
	conn     net.Conn // live stream connection, closed to interrupt reads
	stopped  bool
	promoted bool
	lastErr  error
	stop     chan struct{}
	done     chan struct{} // closed when the run loop has fully exited
}

// StartFollower puts the store into replica mode and starts the replication
// loop against the primary at addr. The returned Follower keeps reconnecting
// until Stop or Promote.
func StartFollower(store *wal.DurableStore, addr string, opts FollowerOptions) *Follower {
	store.SetReplica(true)
	f := &Follower{
		store: store,
		addr:  addr,
		opts:  opts.withDefaults(),
		ins:   newInstruments(opts.Metrics),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go f.run()
	return f
}

// Promoted reports whether Promote has flipped this node to primary.
func (f *Follower) Promoted() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.promoted
}

// Err returns the most recent stream error, for diagnostics.
func (f *Follower) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lastErr
}

// Stop ends the replication loop without changing the store's replica mode.
func (f *Follower) Stop() {
	f.halt()
	<-f.done
}

// Promote stops replication and reopens the store's write path: the node is
// now a primary (manual failover — the operator must ensure the old primary
// is dead or demoted, this package enforces no consensus). Idempotent.
func (f *Follower) Promote() {
	f.mu.Lock()
	already := f.promoted
	f.promoted = true
	f.mu.Unlock()
	if already {
		return
	}
	f.halt()
	<-f.done // no ApplyReplica can be in flight once the loop has exited
	f.store.SetReplica(false)
}

// halt closes the stop channel and the live connection so every blocking
// read/sleep in the run loop returns promptly.
func (f *Follower) halt() {
	f.mu.Lock()
	if !f.stopped {
		f.stopped = true
		close(f.stop)
	}
	conn := f.conn
	f.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
}

// setConn publishes the live connection for halt to interrupt; it closes c
// immediately if the follower was stopped in between.
func (f *Follower) setConn(c net.Conn) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.stopped {
		if c != nil {
			_ = c.Close()
		}
		return false
	}
	f.conn = c
	return true
}

func (f *Follower) setErr(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.lastErr = err
}

func (f *Follower) isStopped() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stopped
}

// run is the reconnect loop: dial, stream until error, back off, repeat.
func (f *Follower) run() {
	defer close(f.done)
	backoff := f.opts.BackoffBase
	for {
		if f.isStopped() {
			return
		}
		conn, err := net.DialTimeout("tcp", f.addr, f.opts.DialTimeout)
		if err == nil {
			if !f.setConn(conn) {
				return
			}
			f.ins.connects.Inc()
			start := time.Now()
			err = f.stream(conn)
			_ = conn.Close()
			f.setConn(nil)
			if time.Since(start) > 10*time.Second {
				backoff = f.opts.BackoffBase // the session was healthy: reset
			}
		}
		f.setErr(err)
		if f.isStopped() {
			return
		}
		select {
		case <-f.stop:
			return
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > f.opts.BackoffMax {
			backoff = f.opts.BackoffMax
		}
	}
}

// stream runs one REPLICATE session: handshake from the local durable
// offset, then apply DATA frames (reassembling records that split across
// chunks) and acknowledge each applied batch.
func (f *Follower) stream(conn net.Conn) error {
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	_ = conn.SetWriteDeadline(time.Now().Add(f.opts.WriteTimeout))
	if _, err := fmt.Fprintf(bw, "REPLICATE %d %d\n", f.store.AckedOffset(), f.store.AckedSeq()); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	_ = conn.SetReadDeadline(time.Now().Add(f.opts.ReadTimeout))
	line, err := br.ReadString('\n')
	if err != nil {
		return fmt.Errorf("repl: handshake: %w", err)
	}
	if !strings.HasPrefix(line, "OK") {
		return errors.New("repl: handshake refused: " + strings.TrimSpace(line))
	}

	var pending []byte // raw log bytes not yet forming a whole record
	for {
		_ = conn.SetReadDeadline(time.Now().Add(f.opts.ReadTimeout))
		line, err := br.ReadString('\n')
		if err != nil {
			return err
		}
		line = strings.TrimSuffix(line, "\n")
		switch {
		case line == framePing:
			// Keepalive only; nothing to apply or acknowledge.
		case strings.HasPrefix(line, frameData):
			n, err := strconv.Atoi(line[len(frameData):])
			if err != nil || n <= 0 || n > maxFrameBytes {
				return fmt.Errorf("repl: bad DATA frame %q", line)
			}
			chunk := make([]byte, n)
			_ = conn.SetReadDeadline(time.Now().Add(f.opts.ReadTimeout))
			if _, err := io.ReadFull(br, chunk); err != nil {
				return err
			}
			pending = append(pending, chunk...)
			recs, consumed, err := wal.Decode(pending)
			if err != nil {
				return fmt.Errorf("repl: corrupt stream: %w", err)
			}
			if len(recs) > 0 {
				if err := f.store.ApplyReplica(recs); err != nil {
					return err
				}
				f.ins.applied.Add(int64(len(recs)))
			}
			pending = append(pending[:0], pending[consumed:]...)
			_ = conn.SetWriteDeadline(time.Now().Add(f.opts.WriteTimeout))
			if _, err := fmt.Fprintf(bw, "%s%d %d\n", frameAck, f.store.AckedOffset(), f.store.AckedSeq()); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}
		case strings.HasPrefix(line, frameErr):
			return errors.New("repl: primary: " + strings.TrimPrefix(line, frameErr))
		default:
			return fmt.Errorf("repl: unexpected frame %q", line)
		}
	}
}
