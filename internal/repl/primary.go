package repl

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/wal"
)

// ErrStopped is returned by WaitReplicated when the primary is shut down
// while a write waits for a follower acknowledgement.
var ErrStopped = errors.New("repl: primary stopped")

// Options tunes a Primary. The zero value is AckPrimary mode with no
// shedding and default timeouts.
type Options struct {
	// Mode selects the acknowledgement mode; empty means AckPrimary.
	Mode Mode
	// MaxLag is the shed threshold in records for AckPrimary mode: a
	// follower whose acked record count falls more than this behind the
	// primary's durable count is disconnected. 0 disables shedding.
	MaxLag uint64
	// AckTimeout bounds WaitReplicated in AckFollower mode.
	AckTimeout time.Duration
	// PingEvery is the keepalive interval while the log is idle.
	PingEvery time.Duration
	// WriteTimeout is the per-frame write deadline towards a follower.
	WriteTimeout time.Duration
	// ChunkBytes caps one DATA frame's payload.
	ChunkBytes int
	// Metrics receives the repl_* instruments (nil: the default registry).
	Metrics *metrics.Registry
}

func (o Options) withDefaults() Options {
	if o.Mode == "" {
		o.Mode = AckPrimary
	}
	if o.AckTimeout <= 0 {
		o.AckTimeout = defaultAckTimeout
	}
	if o.PingEvery <= 0 {
		o.PingEvery = defaultPingEvery
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = defaultWriteTimeout
	}
	if o.ChunkBytes <= 0 {
		o.ChunkBytes = defaultChunkBytes
	}
	return o
}

// Primary is the sending side of replication: it serves REPLICATE streams
// off a DurableStore's log and, in AckFollower mode, lets the write path
// wait until a follower has made a record durable.
type Primary struct {
	store *wal.DurableStore
	opts  Options
	ins   *instruments

	mu      sync.Mutex
	stopped bool
	stop    chan struct{}         // closed by Stop; unblocks waits and senders
	conns   map[net.Conn]struct{} // live follower connections, closed on Stop
	maxAck  int64                 // highest byte offset any follower has acked
	ackWake chan struct{}         // closed and replaced when maxAck advances
}

// NewPrimary wires a Primary over the store whose log it will stream.
func NewPrimary(store *wal.DurableStore, opts Options) *Primary {
	opts = opts.withDefaults()
	return &Primary{
		store:   store,
		opts:    opts,
		ins:     newInstruments(opts.Metrics),
		stop:    make(chan struct{}),
		conns:   make(map[net.Conn]struct{}),
		ackWake: make(chan struct{}),
	}
}

// Mode reports the acknowledgement mode the primary runs in.
func (p *Primary) Mode() Mode { return p.opts.Mode }

// Stop disconnects every follower and releases all WaitReplicated waiters
// with ErrStopped. Safe to call more than once.
func (p *Primary) Stop() {
	p.mu.Lock()
	if !p.stopped {
		p.stopped = true
		close(p.stop)
	}
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, c := range conns {
		_ = c.Close() // unblocks the per-connection sender and ack reader
	}
}

// track registers a live follower connection; it returns false if the
// primary is already stopped (the caller must refuse the stream).
func (p *Primary) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stopped {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Primary) untrack(c net.Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.conns, c)
}

// advanceAck records a follower's durable offset and wakes WaitReplicated
// waiters when the cluster-wide maximum moves forward.
func (p *Primary) advanceAck(bytes int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if bytes > p.maxAck {
		p.maxAck = bytes
		close(p.ackWake) // broadcast: closing a channel never blocks
		p.ackWake = make(chan struct{})
	}
}

// WaitReplicated blocks until at least one follower has fsynced everything
// staged into the log at the time of the call. In AckPrimary mode it returns
// immediately — replication is asynchronous there. The primary's own log is
// flushed first if its durable prefix has not yet covered the staged bytes
// (group-commit batching), so the follower can actually be sent the record
// it is being waited on.
func (p *Primary) WaitReplicated() error {
	if p.opts.Mode != AckFollower {
		return nil
	}
	off := p.store.WrittenOffset()
	if p.store.AckedOffset() < off {
		if err := p.store.Flush(); err != nil {
			return err
		}
	}
	timer := time.NewTimer(p.opts.AckTimeout)
	defer timer.Stop()
	for {
		p.mu.Lock()
		if p.maxAck >= off {
			p.mu.Unlock()
			return nil
		}
		wake := p.ackWake
		stopped := p.stopped
		nConns := len(p.conns)
		p.mu.Unlock()
		if stopped {
			return ErrStopped
		}
		select {
		case <-wake:
		case <-p.stop:
			return ErrStopped
		case <-timer.C:
			return fmt.Errorf("repl: no follower ack within %s (followers=%d)", p.opts.AckTimeout, nConns)
		}
	}
}

// followerState is the per-connection ack cursor, written by the connection's
// ack-reader goroutine and read by its sender loop.
type followerState struct {
	ackBytes atomic.Int64
	ackSeq   atomic.Uint64
}

// ServeFollower answers one REPLICATE command: it streams the durable log
// suffix from offset to the follower on conn and then tails live group
// commits until the connection breaks, the primary stops, or the follower is
// shed for lag. It owns both directions of the connection for its whole
// lifetime (ACK lines arrive on br) and returns when the stream is over; the
// caller closes conn. offset/seq are the follower's durable cursor from the
// REPLICATE line.
func (p *Primary) ServeFollower(conn net.Conn, br *bufio.Reader, bw *bufio.Writer, offset int64, seq uint64) error {
	if offset < int64(wal.HeaderLen) {
		// A brand-new follower may report 0; the stream always starts after
		// the header both sides write on their own.
		offset, seq = int64(wal.HeaderLen), 0
	}
	fail := func(format string, args ...any) error {
		msg := fmt.Sprintf(format, args...)
		_ = conn.SetWriteDeadline(time.Now().Add(p.opts.WriteTimeout))
		_, _ = bw.WriteString(frameErr + msg + "\n")
		_ = bw.Flush()
		return errors.New("repl: " + msg)
	}
	if acked := p.store.AckedOffset(); offset > acked {
		return fail("diverged: follower offset %d ahead of primary durable %d; restart the follower from an empty log", offset, acked)
	}
	if !p.track(conn) {
		return fail("shutting down")
	}
	defer p.untrack(conn)
	p.ins.connects.Inc()
	p.ins.followers.Inc()
	defer p.ins.followers.Dec()

	f, err := os.Open(p.store.LogPath())
	if err != nil {
		return fail("log open: %v", err)
	}
	defer f.Close()

	_ = conn.SetWriteDeadline(time.Now().Add(p.opts.WriteTimeout))
	if _, err := fmt.Fprintf(bw, "OK replicate offset=%d\n", offset); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}

	// The ack reader drains the follower's ACK lines concurrently with the
	// sender loop below; it is the connection's only reader from here on.
	st := &followerState{}
	st.ackBytes.Store(offset)
	st.ackSeq.Store(seq)
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				return
			}
			var bytes int64
			var seq uint64
			if _, err := fmt.Sscanf(line, frameAck+"%d %d", &bytes, &seq); err != nil {
				return // protocol violation: drop the connection
			}
			st.ackBytes.Store(bytes)
			st.ackSeq.Store(seq)
			p.advanceAck(bytes)
		}
	}()
	// The sender owns conn; make sure the reader is gone before returning so
	// it never touches a connection the server has moved on from.
	defer func() {
		_ = conn.Close()
		<-readerDone
	}()

	buf := make([]byte, p.opts.ChunkBytes)
	notify := make(chan struct{}, 1)
	p.store.SubscribeSynced(notify)
	defer p.store.UnsubscribeSynced(notify)
	ticker := time.NewTicker(p.opts.PingEvery)
	defer ticker.Stop()
	caughtUp := false

	for {
		// Drain everything durable beyond the follower's cursor. The durable
		// offset only grows, and every byte below it is fsynced and stable,
		// so reading the file at [offset, target) races nothing.
		target := p.store.AckedOffset()
		for offset < target {
			n := int(min(int64(len(buf)), target-offset))
			if _, err := f.ReadAt(buf[:n], offset); err != nil {
				return fail("log read at %d: %v", offset, err)
			}
			_ = conn.SetWriteDeadline(time.Now().Add(p.opts.WriteTimeout))
			if _, err := fmt.Fprintf(bw, "%s%d\n", frameData, n); err != nil {
				return err
			}
			if _, err := bw.Write(buf[:n]); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}
			offset += int64(n)
		}
		if !caughtUp {
			caughtUp = true
			p.ins.catchups.Inc()
		}

		// Lag accounting and the shed policy. Lag is measured in records
		// against what the follower has acked as durable, so a follower that
		// receives but never fsyncs/acks is lagging even at the stream tip.
		durable := p.store.AckedSeq()
		ackSeq := st.ackSeq.Load()
		var lag uint64
		if durable > ackSeq {
			lag = durable - ackSeq
		}
		p.ins.lag.Set(float64(lag))
		if p.opts.Mode == AckPrimary && p.opts.MaxLag > 0 && lag > p.opts.MaxLag {
			p.ins.sheds.Inc()
			return fail("lagging %d records behind (max %d); reconnect to catch up", lag, p.opts.MaxLag)
		}

		select {
		case <-notify:
		case <-ticker.C:
			_ = conn.SetWriteDeadline(time.Now().Add(p.opts.WriteTimeout))
			if _, err := bw.WriteString(framePing + "\n"); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}
		case <-p.stop:
			return fail("shutting down")
		case <-readerDone:
			return errors.New("repl: follower connection lost")
		}
	}
}
