// Package repl implements primary→follower WAL streaming replication.
//
// A follower dials its primary and issues REPLICATE <offset> [seq], naming
// the byte length of its own durable log — because the record encoding is
// deterministic, a faithful follower's log is a byte-exact prefix of the
// primary's, so that length IS the catch-up cursor. The primary streams the
// acknowledged (fsynced) suffix of its log as DATA frames, then tails live
// group commits; the follower re-applies each record through its own
// wal.DurableStore (store restore + local log + fsync) and reports its new
// durable offset back with ACK lines on the same connection.
//
// Two acknowledgement modes connect replication to the ingest path:
//
//   - AckPrimary (default): replication is asynchronous. A follower that
//     falls more than MaxLag records behind the primary's durable prefix is
//     disconnected with a polite ERR (repl_sheds_total) and must reconnect
//     to catch up, so a slow follower can never stall the group-commit
//     leader.
//   - AckFollower: an APPEND/MAPPEND is acknowledged to the client only
//     after at least one follower has fsynced it (Primary.WaitReplicated),
//     extending the acknowledged-prefix invariant across machines.
//
// PROMOTE flips a follower into a primary (manual failover — no consensus):
// the replication loop stops and the store's write path reopens. The
// operator is responsible for never running two primaries.
//
// Replication and log compaction are incompatible while a follower is
// attached: Compact swaps the file behind LogPath and rewrites history, so
// byte offsets stop matching. Runtime code never compacts (it is a
// maintenance operation); a compacted primary requires followers restarted
// from empty logs.
package repl

import (
	"time"

	"repro/internal/metrics"
)

// Mode selects when the primary acknowledges a write to its client.
type Mode string

const (
	// AckPrimary acknowledges once the primary's own fsync covers the
	// record; replication is asynchronous with lag bounded by shedding.
	AckPrimary Mode = "primary"
	// AckFollower acknowledges only after a follower's fsync also covers
	// the record.
	AckFollower Mode = "follower"
)

// ParseMode validates a -repl-ack flag value.
func ParseMode(s string) (Mode, bool) {
	switch Mode(s) {
	case AckPrimary, AckFollower:
		return Mode(s), true
	}
	return "", false
}

// Wire-protocol framing, shared by the primary sender and follower applier.
// All frames are a text line; DATA is followed by exactly n raw log bytes
// (chunks need not align with record boundaries — the follower reassembles).
const (
	frameData = "DATA " // DATA <n>\n + n bytes of raw log
	framePing = "PING"  // keepalive while the log is idle
	frameErr  = "ERR "  // terminal: shed, shutdown, divergence
	frameAck  = "ACK "  // follower→primary: ACK <bytes> <seq>\n
)

// Defaults for the tunables of both endpoints.
const (
	defaultAckTimeout   = 10 * time.Second
	defaultPingEvery    = 1 * time.Second
	defaultWriteTimeout = 10 * time.Second
	defaultReadTimeout  = 10 * time.Second // > pingEvery: an idle primary still pings
	defaultDialTimeout  = 5 * time.Second
	defaultBackoffBase  = 50 * time.Millisecond
	defaultBackoffMax   = 2 * time.Second
	defaultChunkBytes   = 64 << 10
	maxFrameBytes       = 1 << 20 // sanity bound on a received DATA length
)

type instruments struct {
	// followers is the number of attached replication connections (primary).
	followers *metrics.Gauge
	// lag is the most recently computed follower lag in records: the
	// primary's durable record count minus the follower's acked count.
	lag *metrics.Gauge
	// catchups counts follower connections that reached the primary's
	// durable tip at least once (completed catch-up phase).
	catchups *metrics.Counter
	// sheds counts followers disconnected for exceeding MaxLag.
	sheds *metrics.Counter
	// connects counts replication connections (accepted on the primary,
	// dialled on the follower — each endpoint counts its own).
	connects *metrics.Counter
	// applied counts records a follower applied from the stream.
	applied *metrics.Counter
}

func newInstruments(r *metrics.Registry) *instruments {
	if r == nil {
		r = metrics.Default()
	}
	return &instruments{
		followers: r.Gauge("repl_followers"),
		lag:       r.Gauge("repl_lag_records"),
		catchups:  r.Counter("repl_catchups_total"),
		sheds:     r.Counter("repl_sheds_total"),
		connects:  r.Counter("repl_connects_total"),
		applied:   r.Counter("repl_applied_records_total"),
	}
}
