package repl

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/trajectory"
	"repro/internal/wal"
)

func openStore(t *testing.T, reg *metrics.Registry) *wal.DurableStore {
	t.Helper()
	d, err := wal.OpenDurable(filepath.Join(t.TempDir(), "trips.wal"), store.Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	d.SetSyncEvery(0)
	t.Cleanup(func() { _ = d.Close() })
	return d
}

// acceptLoop is a minimal stand-in for the server package: it accepts
// connections, parses the REPLICATE line, and hands the stream to the
// Primary — exactly the handoff the real dispatch performs.
func acceptLoop(t *testing.T, p *Primary) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer conn.Close()
				serveReplicate(p, conn)
			}()
		}
	}()
	t.Cleanup(func() {
		p.Stop()
		_ = ln.Close()
		wg.Wait()
	})
	return ln.Addr().String()
}

// serveReplicate performs the server side of one replication connection.
func serveReplicate(p *Primary, conn net.Conn) {
	br := bufio.NewReader(conn)
	line, err := br.ReadString('\n')
	if err != nil {
		return
	}
	var off int64
	var seq uint64
	if _, err := fmt.Sscanf(line, "REPLICATE %d %d", &off, &seq); err != nil {
		return
	}
	_ = p.ServeFollower(conn, br, bufio.NewWriter(conn), off, seq)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func fastFollowerOpts(reg *metrics.Registry) FollowerOptions {
	return FollowerOptions{
		DialTimeout: time.Second,
		ReadTimeout: 2 * time.Second,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		Metrics:     reg,
	}
}

// TestCatchUpAndLiveTail: a follower joining after the primary has history
// catches up byte-for-byte, then receives live appends as they commit.
func TestCatchUpAndLiveTail(t *testing.T) {
	pReg, fReg := metrics.NewRegistry(), metrics.NewRegistry()
	pStore := openStore(t, pReg)
	for i := 0; i < 50; i++ {
		if err := pStore.Append("car", trajectory.S(float64(i), float64(i), 2)); err != nil {
			t.Fatal(err)
		}
	}
	p := NewPrimary(pStore, Options{PingEvery: 50 * time.Millisecond, Metrics: pReg})
	addr := acceptLoop(t, p)

	fStore := openStore(t, fReg)
	f := StartFollower(fStore, addr, fastFollowerOpts(fReg))
	defer f.Stop()

	waitFor(t, "catch-up", func() bool { return fStore.AckedSeq() == 50 })

	// Live tail: new appends arrive without a reconnect.
	for i := 50; i < 80; i++ {
		if err := pStore.Append("car", trajectory.S(float64(i), float64(i), 2)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "live tail", func() bool { return fStore.AckedSeq() == 80 })

	pRaw, err := os.ReadFile(pStore.LogPath())
	if err != nil {
		t.Fatal(err)
	}
	fRaw, err := os.ReadFile(fStore.LogPath())
	if err != nil {
		t.Fatal(err)
	}
	if string(pRaw) != string(fRaw) {
		t.Errorf("logs differ after replication (%d vs %d bytes)", len(pRaw), len(fRaw))
	}
	ps, _ := pStore.Snapshot("car")
	fs, _ := fStore.Snapshot("car")
	if len(ps) != len(fs) {
		t.Fatalf("snapshot lengths differ: %d vs %d", len(ps), len(fs))
	}
	for i := range ps {
		if ps[i] != fs[i] {
			t.Fatalf("sample %d = %+v on follower, want %+v", i, fs[i], ps[i])
		}
	}
	if pReg.Counter("repl_catchups_total").Value() < 1 {
		t.Error("repl_catchups_total not incremented")
	}
}

// TestWaitReplicated: in AckFollower mode a write is only acknowledged once
// a follower's fsync covers it; with no follower attached the wait times
// out instead of silently succeeding.
func TestWaitReplicated(t *testing.T) {
	pReg := metrics.NewRegistry()
	pStore := openStore(t, pReg)
	p := NewPrimary(pStore, Options{
		Mode:       AckFollower,
		AckTimeout: 200 * time.Millisecond,
		PingEvery:  50 * time.Millisecond,
		Metrics:    pReg,
	})

	// No follower: appends are locally durable but never replicated.
	if err := pStore.Append("x", trajectory.S(1, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := p.WaitReplicated(); err == nil {
		t.Fatal("WaitReplicated succeeded with no follower attached")
	}

	addr := acceptLoop(t, p)
	fReg := metrics.NewRegistry()
	fStore := openStore(t, fReg)
	f := StartFollower(fStore, addr, fastFollowerOpts(fReg))
	defer f.Stop()

	if err := pStore.Append("x", trajectory.S(2, 2, 2)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	var err error
	for time.Now().Before(deadline) {
		if err = p.WaitReplicated(); err == nil {
			break
		}
	}
	if err != nil {
		t.Fatalf("WaitReplicated with live follower: %v", err)
	}
	if got := fStore.AckedSeq(); got != 2 {
		t.Errorf("follower AckedSeq = %d after acked write, want 2", got)
	}
}

// TestShedLaggingFollower: in AckPrimary mode a follower that receives the
// stream but never acknowledges is shed once its lag passes MaxLag, and the
// primary's ingest keeps making progress throughout.
func TestShedLaggingFollower(t *testing.T) {
	pReg := metrics.NewRegistry()
	pStore := openStore(t, pReg)
	p := NewPrimary(pStore, Options{
		Mode:      AckPrimary,
		MaxLag:    10,
		PingEvery: 20 * time.Millisecond,
		Metrics:   pReg,
	})
	addr := acceptLoop(t, p)

	// A hand-rolled stalled follower: performs the handshake, drains frames
	// so the primary's writes never block, but never sends an ACK.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "REPLICATE %d 0\n", wal.HeaderLen); err != nil {
		t.Fatal(err)
	}
	shed := make(chan string, 1)
	go func() {
		br := bufio.NewReader(conn)
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				return
			}
			if strings.HasPrefix(line, "ERR") {
				shed <- strings.TrimSpace(line)
				return
			}
			if strings.HasPrefix(line, "DATA ") {
				var n int
				if _, err := fmt.Sscanf(line, "DATA %d", &n); err != nil {
					return
				}
				if _, err := br.Discard(n); err != nil {
					return
				}
			}
		}
	}()

	for i := 0; i < 100; i++ {
		if err := pStore.Append("x", trajectory.S(float64(i), 1, 1)); err != nil {
			t.Fatalf("primary ingest blocked at %d: %v", i, err)
		}
	}
	select {
	case line := <-shed:
		if !strings.Contains(line, "lagging") {
			t.Errorf("shed reason = %q, want lagging", line)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stalled follower was never shed")
	}
	if got := pReg.Counter("repl_sheds_total").Value(); got < 1 {
		t.Errorf("repl_sheds_total = %d, want >= 1", got)
	}
}

// TestPromote: promotion stops replication and reopens the write path; the
// promoted node's state is the replicated prefix.
func TestPromote(t *testing.T) {
	pReg, fReg := metrics.NewRegistry(), metrics.NewRegistry()
	pStore := openStore(t, pReg)
	p := NewPrimary(pStore, Options{PingEvery: 20 * time.Millisecond, Metrics: pReg})
	addr := acceptLoop(t, p)

	fStore := openStore(t, fReg)
	f := StartFollower(fStore, addr, fastFollowerOpts(fReg))
	for i := 0; i < 10; i++ {
		if err := pStore.Append("x", trajectory.S(float64(i), 1, 1)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "replication", func() bool { return fStore.AckedSeq() == 10 })

	if err := fStore.Append("x", trajectory.S(100, 1, 1)); !errors.Is(err, wal.ErrReplica) {
		t.Fatalf("pre-promotion Append = %v, want ErrReplica", err)
	}
	f.Promote()
	if !f.Promoted() {
		t.Error("Promoted() = false after Promote")
	}
	f.Promote() // idempotent
	if err := fStore.Append("x", trajectory.S(100, 1, 1)); err != nil {
		t.Fatalf("post-promotion Append: %v", err)
	}
	if got := fStore.AckedSeq(); got != 11 {
		t.Errorf("promoted AckedSeq = %d, want 11 (replicated 10 + own 1)", got)
	}
}

// TestFollowerReconnect: a follower whose stream drops reconnects with
// backoff and resumes from its durable offset rather than from scratch.
func TestFollowerReconnect(t *testing.T) {
	pReg, fReg := metrics.NewRegistry(), metrics.NewRegistry()
	pStore := openStore(t, pReg)
	for i := 0; i < 5; i++ {
		if err := pStore.Append("x", trajectory.S(float64(i), 1, 1)); err != nil {
			t.Fatal(err)
		}
	}
	p := NewPrimary(pStore, Options{PingEvery: 20 * time.Millisecond, Metrics: pReg})

	// An accept loop that slams the door on the first attempt right after
	// the handshake line arrives, then serves normally.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var attempts atomic.Int32
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			if attempts.Add(1) == 1 {
				_ = conn.Close()
				continue
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer conn.Close()
				serveReplicate(p, conn)
			}()
		}
	}()
	t.Cleanup(func() {
		p.Stop()
		_ = ln.Close()
		wg.Wait()
	})

	fStore := openStore(t, fReg)
	f := StartFollower(fStore, ln.Addr().String(), fastFollowerOpts(fReg))
	defer f.Stop()
	waitFor(t, "catch-up after reconnect", func() bool { return fStore.AckedSeq() == 5 })
	if got := attempts.Load(); got < 2 {
		t.Errorf("attempts = %d, want >= 2 (first was dropped)", got)
	}
	if got := fReg.Counter("repl_connects_total").Value(); got < 2 {
		t.Errorf("repl_connects_total = %d, want >= 2", got)
	}
}
