package interp

import (
	"math"
	"testing"

	"repro/internal/compress"
	"repro/internal/sed"
	"repro/internal/trajectory"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

// circle samples uniform circular motion: radius r, angular speed w.
func circle(n int, r, w, dt float64) trajectory.Trajectory {
	p := make(trajectory.Trajectory, n)
	for i := range p {
		t := float64(i) * dt
		p[i] = trajectory.S(t, r*math.Cos(w*t), r*math.Sin(w*t))
	}
	return p
}

func TestNewSplineValidation(t *testing.T) {
	if _, err := NewSpline(trajectory.Trajectory{trajectory.S(0, 0, 0)}); err == nil {
		t.Error("single-sample trajectory accepted")
	}
	bad := trajectory.Trajectory{trajectory.S(1, 0, 0), trajectory.S(0, 1, 1)}
	if _, err := NewSpline(bad); err == nil {
		t.Error("unsorted trajectory accepted")
	}
}

func TestSplinePassesThroughSamples(t *testing.T) {
	p := circle(20, 100, 0.1, 1)
	sp, err := NewSpline(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range p {
		got, ok := sp.At(s.T)
		if !ok {
			t.Fatalf("At(%v) out of range", s.T)
		}
		if !got.AlmostEqual(s.Pos(), 1e-9) {
			t.Errorf("At(%v) = %v, want %v", s.T, got, s.Pos())
		}
	}
	if _, ok := sp.At(-1); ok {
		t.Error("time before span answered")
	}
	if _, ok := sp.At(1e9); ok {
		t.Error("time after span answered")
	}
}

// On linear motion the spline reduces exactly to linear interpolation.
func TestSplineLinearMotionExact(t *testing.T) {
	var p trajectory.Trajectory
	for i := 0; i < 10; i++ {
		p = append(p, trajectory.S(float64(i*7), float64(i*30), float64(-i*10)))
	}
	sp, err := NewSpline(p)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0.0; tt <= p.EndTime(); tt += 1.7 {
		got, _ := sp.At(tt)
		want, _ := p.LocAt(tt)
		if !got.AlmostEqual(want, 1e-9) {
			t.Fatalf("At(%v) = %v, linear %v", tt, got, want)
		}
	}
}

// On smooth curved motion the spline reconstructs between-sample positions
// far better than linear interpolation.
func TestSplineBeatsLinearOnCurves(t *testing.T) {
	// Coarse samples of a circle (every 1 rad ≈ 57°): severe for linear.
	coarse := circle(8, 100, 1, 1)
	sp, err := NewSpline(coarse)
	if err != nil {
		t.Fatal(err)
	}
	truth := func(t float64) (x, y float64) { return 100 * math.Cos(t), 100 * math.Sin(t) }
	var linErr, splErr float64
	n := 0
	for tt := 0.0; tt <= coarse.EndTime(); tt += 0.05 {
		tx, ty := truth(tt)
		lin, _ := coarse.LocAt(tt)
		spl, _ := sp.At(tt)
		linErr += math.Hypot(lin.X-tx, lin.Y-ty)
		splErr += math.Hypot(spl.X-tx, spl.Y-ty)
		n++
	}
	linErr /= float64(n)
	splErr /= float64(n)
	if splErr >= linErr/2 {
		t.Errorf("spline error %.3f not clearly below linear %.3f", splErr, linErr)
	}
}

func TestSplineVelocity(t *testing.T) {
	// Uniform circular motion: |v| = r·w everywhere.
	const r, w = 100.0, 0.1
	p := circle(40, r, w, 1)
	sp, err := NewSpline(p)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 2.0; tt < 35; tt += 1.3 {
		v, ok := sp.Velocity(tt)
		if !ok {
			t.Fatalf("Velocity(%v) out of range", tt)
		}
		if speed := v.Norm(); !almostEq(speed, r*w, 0.25) {
			t.Errorf("speed at %v = %.3f, want ≈%.1f", tt, speed, r*w)
		}
	}
}

// Velocity is continuous at interior samples (the point of C¹).
func TestSplineVelocityContinuity(t *testing.T) {
	p := circle(20, 100, 0.3, 1)
	sp, err := NewSpline(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < p.Len()-1; i++ {
		before, _ := sp.Velocity(p[i].T - 1e-7)
		after, _ := sp.Velocity(p[i].T + 1e-7)
		if before.Dist(after) > 1e-3 {
			t.Errorf("velocity jump at sample %d: %v vs %v", i, before, after)
		}
	}
}

func TestResample(t *testing.T) {
	p := circle(10, 50, 0.2, 2)
	sp, err := NewSpline(p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sp.Resample(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("resample invalid: %v", err)
	}
	if r[0].T != p.StartTime() || r[r.Len()-1].T != p.EndTime() {
		t.Errorf("resample bounds %v..%v", r[0].T, r[r.Len()-1].T)
	}
	if _, err := sp.Resample(0); err == nil {
		t.Error("dt=0 accepted")
	}
}

// Spline-based synchronized error: zero for identical trajectories,
// positive for real approximations, and close to the linear α when motion
// is linear.
func TestAvgError(t *testing.T) {
	p := circle(30, 100, 0.25, 2)
	if e, err := AvgError(p, p.Clone(), 1e-9); err != nil || e > 1e-9 {
		t.Errorf("identity spline error = %v, %v", e, err)
	}

	a := compress.TDTR{Threshold: 15}.Compress(p)
	splineErr, err := AvgError(p, a, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if splineErr <= 0 {
		t.Errorf("spline error = %v, want > 0", splineErr)
	}
	linearErr, err := sed.AvgError(p, a)
	if err != nil {
		t.Fatal(err)
	}
	// On circular motion the spline reconstruction of the original stays
	// near the truth, so the spline error should not explode relative to
	// the linear notion.
	if splineErr > 3*linearErr+5 {
		t.Errorf("spline error %.2f implausibly large vs linear %.2f", splineErr, linearErr)
	}
}

func TestAvgErrorValidation(t *testing.T) {
	p := circle(10, 100, 0.25, 2)
	one := trajectory.Trajectory{trajectory.S(0, 0, 0)}
	if _, err := AvgError(p, one, 1e-6); err == nil {
		t.Error("degenerate approximation accepted")
	}
	far := p.Shift(1e6, 0, 0)
	if _, err := AvgError(p, far, 1e-6); err == nil {
		t.Error("disjoint spans accepted")
	}
}

// Compressing then reconstructing with the spline loses less than linear
// reconstruction on smooth motion — the motivation for the paper's future
// work.
func TestSplineReconstructionAfterCompression(t *testing.T) {
	fine := circle(200, 100, 0.05, 1) // smooth, densely sampled truth
	a := compress.TDTR{Threshold: 5}.Compress(fine)

	sa, err := NewSpline(a)
	if err != nil {
		t.Fatal(err)
	}
	var linErr, splErr float64
	n := 0
	for tt := fine.StartTime(); tt <= a.EndTime(); tt += 0.5 {
		truth, _ := fine.LocAt(tt)
		lin, _ := a.LocAt(tt)
		spl, ok := sa.At(tt)
		if !ok {
			continue
		}
		linErr += truth.Dist(lin)
		splErr += truth.Dist(spl)
		n++
	}
	linErr /= float64(n)
	splErr /= float64(n)
	if splErr >= linErr {
		t.Errorf("spline reconstruction %.3f not below linear %.3f", splErr, linErr)
	}
}
