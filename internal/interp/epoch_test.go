package interp

import (
	"testing"

	"repro/internal/trajectory"
)

// TestSplineResampleEpochTimestamps: spline resampling shares the fixed-dt
// sweep, so at Unix-epoch-scale timestamps the old accumulating loop
// drifts off the grid t0 + i·dt (see trajectory.TestResampleEpochTimestamps).
func TestSplineResampleEpochTimestamps(t *testing.T) {
	const t0 = 1.7e9
	p := trajectory.MustNew([]trajectory.Sample{
		trajectory.S(t0, 0, 0),
		trajectory.S(t0+2, 20, 5),
		trajectory.S(t0+4, 40, 0),
	})
	sp, err := NewSpline(p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sp.Resample(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 41 {
		t.Fatalf("Resample(0.1) yields %d samples, want 41", r.Len())
	}
	for i, s := range r {
		if want := t0 + float64(i)*0.1; s.T != want {
			t.Errorf("sample %d at %.9f, want exactly %.9f (off-grid by %g)", i, s.T, want, s.T-want)
		}
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("resampled trajectory invalid: %v", err)
	}
}
