// Package interp implements the paper's §5 future-work direction: a more
// advanced interpolation technique than piecewise-linear — a non-uniform
// cubic Hermite (Catmull-Rom) spline through the trajectory samples — and
// the corresponding error notion.
//
// Piecewise-linear interpolation assumes the object changes direction and
// speed instantaneously at every sample. A C¹ spline instead carries a
// continuous velocity estimate through the samples (finite-difference
// tangents), which reconstructs smooth vehicle motion more faithfully,
// especially after compression has widened the gaps between samples.
package interp

import (
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/trajectory"
)

// Spline is a non-uniform Catmull-Rom interpolation of a trajectory. It
// passes through every sample; between samples it follows a cubic Hermite
// curve whose tangents are centred finite differences of position over
// time (one-sided at the endpoints).
type Spline struct {
	p        trajectory.Trajectory
	tangents []geo.Point // velocity estimate at each sample, m/s
}

// NewSpline builds a spline over p. The trajectory must have at least two
// samples and remains owned by the caller (it is not copied; do not mutate
// it while the spline is in use).
func NewSpline(p trajectory.Trajectory) (*Spline, error) {
	if p.Len() < 2 {
		return nil, fmt.Errorf("interp: need at least 2 samples, have %d", p.Len())
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("interp: %w", err)
	}
	n := p.Len()
	tg := make([]geo.Point, n)
	for i := 0; i < n; i++ {
		switch {
		case i == 0:
			tg[i] = slope(p[0], p[1])
		case i == n-1:
			tg[i] = slope(p[n-2], p[n-1])
		default:
			tg[i] = slope(p[i-1], p[i+1])
		}
	}
	return &Spline{p: p, tangents: tg}, nil
}

// slope returns (b-a)/(tb-ta) as a velocity vector.
func slope(a, b trajectory.Sample) geo.Point {
	dt := b.T - a.T
	return geo.Pt((b.X-a.X)/dt, (b.Y-a.Y)/dt)
}

// At returns the interpolated position at time t; ok is false outside the
// trajectory's time span.
func (sp *Spline) At(t float64) (geo.Point, bool) {
	i, ok := sp.p.SegmentIndexAt(t)
	if !ok {
		return geo.Point{}, false
	}
	a, b := sp.p[i], sp.p[i+1]
	h := b.T - a.T
	s := (t - a.T) / h
	// Hermite basis functions.
	s2, s3 := s*s, s*s*s
	h00 := 2*s3 - 3*s2 + 1
	h10 := s3 - 2*s2 + s
	h01 := -2*s3 + 3*s2
	h11 := s3 - s2
	ma, mb := sp.tangents[i], sp.tangents[i+1]
	return geo.Pt(
		h00*a.X+h10*h*ma.X+h01*b.X+h11*h*mb.X,
		h00*a.Y+h10*h*ma.Y+h01*b.Y+h11*h*mb.Y,
	), true
}

// Velocity returns the interpolated velocity vector (m/s) at time t; ok is
// false outside the time span.
func (sp *Spline) Velocity(t float64) (geo.Point, bool) {
	i, ok := sp.p.SegmentIndexAt(t)
	if !ok {
		return geo.Point{}, false
	}
	a, b := sp.p[i], sp.p[i+1]
	h := b.T - a.T
	s := (t - a.T) / h
	s2 := s * s
	// Derivatives of the Hermite basis, scaled by 1/h for d/dt.
	d00 := (6*s2 - 6*s) / h
	d10 := 3*s2 - 4*s + 1
	d01 := (-6*s2 + 6*s) / h
	d11 := 3*s2 - 2*s
	ma, mb := sp.tangents[i], sp.tangents[i+1]
	return geo.Pt(
		d00*a.X+d10*ma.X+d01*b.X+d11*mb.X,
		d00*a.Y+d10*ma.Y+d01*b.Y+d11*mb.Y,
	), true
}

// Resample returns the spline evaluated every dt seconds (always including
// the final instant), as a new trajectory.
func (sp *Spline) Resample(dt float64) (trajectory.Trajectory, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("interp: non-positive interval %v", dt)
	}
	start, end := sp.p.StartTime(), sp.p.EndTime()
	out := make(trajectory.Trajectory, 0, int((end-start)/dt)+2)
	// Index stepping: t += dt accumulates rounding error at epoch-scale
	// timestamps (see trajectory.Resample).
	for i := 0; ; i++ {
		t := start + float64(i)*dt
		if t >= end {
			break
		}
		pt, _ := sp.At(t)
		out = append(out, trajectory.Sample{T: t, X: pt.X, Y: pt.Y})
	}
	last := sp.p[sp.p.Len()-1]
	out = append(out, last)
	return out, nil
}

// AvgError computes the time-synchronized average error between the
// original trajectory p and the approximation a, with BOTH reconstructed by
// spline interpolation — the error notion the paper's §5 anticipates for
// advanced interpolation. The integral has no convenient closed form for
// cubics, so adaptive Simpson quadrature is used on each elementary
// interval (vertex times of p and a merged), with tolerance tol metres.
func AvgError(p, a trajectory.Trajectory, tol float64) (float64, error) {
	sp, err := NewSpline(p)
	if err != nil {
		return 0, err
	}
	sa, err := NewSpline(a)
	if err != nil {
		return 0, err
	}
	t0 := math.Max(p.StartTime(), a.StartTime())
	t1 := math.Min(p.EndTime(), a.EndTime())
	if t1 <= t0 {
		return 0, fmt.Errorf("interp: trajectories share no time overlap")
	}
	cuts := mergeCuts(p, a, t0, t1)
	dist := func(t float64) float64 {
		pp, _ := sp.At(t)
		pa, _ := sa.At(t)
		return pp.Dist(pa)
	}
	var total float64
	for i := 0; i+1 < len(cuts); i++ {
		total += simpson(dist, cuts[i], cuts[i+1], tol, 20)
	}
	return total / (t1 - t0), nil
}

func mergeCuts(p, a trajectory.Trajectory, t0, t1 float64) []float64 {
	cuts := []float64{t0, t1}
	for _, s := range p {
		if s.T > t0 && s.T < t1 {
			cuts = append(cuts, s.T)
		}
	}
	for _, s := range a {
		if s.T > t0 && s.T < t1 {
			cuts = append(cuts, s.T)
		}
	}
	// Insertion sort + dedup; cut lists are small and nearly sorted.
	for i := 1; i < len(cuts); i++ {
		for j := i; j > 0 && cuts[j] < cuts[j-1]; j-- {
			cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
		}
	}
	out := cuts[:1]
	for _, c := range cuts[1:] {
		//lint:allow floatcmp deduplication of exactly equal cut times
		if c != out[len(out)-1] {
			out = append(out, c)
		}
	}
	return out
}

func simpson(f func(float64) float64, a, b, tol float64, depth int) float64 {
	m := (a + b) / 2
	fa, fm, fb := f(a), f(m), f(b)
	whole := (b - a) / 6 * (fa + 4*fm + fb)
	return simpsonAux(f, a, b, fa, fm, fb, whole, tol, depth)
}

func simpsonAux(f func(float64) float64, a, b, fa, fm, fb, whole, tol float64, depth int) float64 {
	m := (a + b) / 2
	lm, rm := (a+m)/2, (m+b)/2
	flm, frm := f(lm), f(rm)
	left := (m - a) / 6 * (fa + 4*flm + fm)
	right := (b - m) / 6 * (fm + 4*frm + fb)
	if depth <= 0 || math.Abs(left+right-whole) <= 15*tol {
		return left + right + (left+right-whole)/15
	}
	return simpsonAux(f, a, m, fa, flm, fm, left, tol/2, depth-1) +
		simpsonAux(f, m, b, fm, frm, fb, right, tol/2, depth-1)
}
