package fault

import (
	"io"
	"os"
)

// File is the filesystem surface the durable layers need from one open
// file. *os.File implements it.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Seek(offset int64, whence int) (int64, error)
	Sync() error
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
}

// FS is the filesystem surface the durable layers perform all their I/O
// against, so tests can swap in an injecting implementation.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Stat(name string) (os.FileInfo, error)
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) Stat(name string) (os.FileInfo, error) {
	return os.Stat(name)
}

// The failpoint sites an injecting filesystem consults, one per operation.
// Write is evaluated through Eval so its action's Partial byte count can
// tear the write; the rest go through Check.
const (
	SiteOpen     = "fs.open"
	SiteRead     = "fs.read"
	SiteWrite    = "fs.write"
	SiteSync     = "fs.sync"
	SiteClose    = "fs.close"
	SiteSeek     = "fs.seek"
	SiteTruncate = "fs.truncate"
	SiteStat     = "fs.stat"
	SiteRename   = "fs.rename"
	SiteRemove   = "fs.remove"
)

// NewFS wraps base so every operation consults set at the Site* failpoints
// first. With a nil or fully disarmed set the wrapper is transparent.
func NewFS(base FS, set *Set) FS {
	return &injectFS{base: base, set: set}
}

type injectFS struct {
	base FS
	set  *Set
}

func (fs *injectFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err := fs.set.Check(SiteOpen); err != nil {
		return nil, err
	}
	f, err := fs.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injectFile{File: f, set: fs.set}, nil
}

func (fs *injectFS) Rename(oldpath, newpath string) error {
	if err := fs.set.Check(SiteRename); err != nil {
		return err
	}
	return fs.base.Rename(oldpath, newpath)
}

func (fs *injectFS) Remove(name string) error {
	if err := fs.set.Check(SiteRemove); err != nil {
		return err
	}
	return fs.base.Remove(name)
}

func (fs *injectFS) Stat(name string) (os.FileInfo, error) {
	if err := fs.set.Check(SiteStat); err != nil {
		return nil, err
	}
	return fs.base.Stat(name)
}

type injectFile struct {
	File
	set *Set
}

func (f *injectFile) Read(p []byte) (int, error) {
	if err := f.set.Check(SiteRead); err != nil {
		return 0, err
	}
	return f.File.Read(p)
}

// Write applies a fired action as a torn write: the action's Partial
// leading bytes reach the underlying file, the rest never happen, and the
// caller sees the injected error — the on-disk state a crash mid-write
// leaves behind.
func (f *injectFile) Write(p []byte) (int, error) {
	a, fired := f.set.Eval(SiteWrite)
	if !fired {
		return f.File.Write(p)
	}
	n := 0
	if a.Partial > 0 {
		k := a.Partial
		if k > len(p) {
			k = len(p)
		}
		n, _ = f.File.Write(p[:k]) // best effort: the injected error wins
	}
	return n, a.err()
}

func (f *injectFile) Sync() error {
	if err := f.set.Check(SiteSync); err != nil {
		return err
	}
	return f.File.Sync()
}

func (f *injectFile) Close() error {
	if err := f.set.Check(SiteClose); err != nil {
		_ = f.File.Close() // the injected error is the one under test
		return err
	}
	return f.File.Close()
}

func (f *injectFile) Seek(offset int64, whence int) (int64, error) {
	if err := f.set.Check(SiteSeek); err != nil {
		return 0, err
	}
	return f.File.Seek(offset, whence)
}

func (f *injectFile) Truncate(size int64) error {
	if err := f.set.Check(SiteTruncate); err != nil {
		return err
	}
	return f.File.Truncate(size)
}
