// Package fault is a stdlib-only fault-injection substrate for torture
// testing the durable layers: a registry of named failpoint sites that
// production code threads its risky operations through, plus an injectable
// filesystem abstraction (FS/File) the write-ahead log performs all of its
// I/O against.
//
// A failpoint is inert until a test enables it with a trigger policy
// (nth call, every nth call, seeded probability) and an action (return an
// error, panic, or — for writes — persist only a prefix of the buffer, the
// torn-write shape a power cut leaves on disk). Sites that never fire cost
// one mutex acquisition and a map lookup, so production binaries keep the
// sites compiled in; every fired site increments the fault_hits_total
// counter in the configured metrics registry.
package fault

import (
	"errors"
	"math/rand"
	"sync"

	"repro/internal/metrics"
)

// ErrInjected is the error failpoints return when their action does not
// specify one.
var ErrInjected = errors.New("fault: injected error")

// Policy decides, per call, whether an enabled failpoint fires. The call
// counter is 1-based and per-site. Policies returned by this package are
// safe for concurrent use (the Set serializes evaluation).
type Policy func(call uint64) bool

// OnCall fires on exactly the n-th call through the site (1-based) — the
// "fail the second fsync" shape crash tests want.
func OnCall(n uint64) Policy {
	return func(call uint64) bool { return call == n }
}

// EveryNth fires on every n-th call through the site.
func EveryNth(n uint64) Policy {
	if n == 0 {
		n = 1
	}
	return func(call uint64) bool { return call%n == 0 }
}

// Probability fires each call independently with probability p, from a
// seeded generator so a failing torture run replays exactly.
func Probability(p float64, seed int64) Policy {
	rng := rand.New(rand.NewSource(seed))
	return func(uint64) bool { return rng.Float64() < p }
}

// Action is what a fired failpoint does to the operation at its site.
type Action struct {
	// Err is the error the failing operation returns; nil selects
	// ErrInjected.
	Err error
	// PanicMsg, when non-empty, panics instead of returning an error —
	// simulating a crash at exactly this site.
	PanicMsg string
	// Partial applies to write sites: the number of leading bytes actually
	// written before the failure, simulating a torn write. Zero tears the
	// write off entirely.
	Partial int
}

func (a Action) err() error {
	if a.Err == nil {
		return ErrInjected
	}
	return a.Err
}

// point is one registered failpoint site.
type point struct {
	policy Policy
	action Action
	calls  uint64
	hits   uint64
}

// Set is a registry of failpoint sites. The zero of *Set (nil) is valid and
// never fires, so call sites need no guard. All methods are safe for
// concurrent use.
type Set struct {
	mu     sync.Mutex
	points map[string]*point
	hits   *metrics.Counter
}

// NewSet returns an empty failpoint set whose fault_hits_total counter
// registers in r (nil selects metrics.Default()).
func NewSet(r *metrics.Registry) *Set {
	if r == nil {
		r = metrics.Default()
	}
	return &Set{
		points: make(map[string]*point),
		hits:   r.Counter("fault_hits_total"),
	}
}

// Enable arms the named site with a trigger policy and an action,
// resetting its call and hit counters. Enabling an armed site rearms it.
func (s *Set) Enable(site string, p Policy, a Action) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.points[site] = &point{policy: p, action: a}
}

// Disable disarms the named site; later calls pass through untouched.
func (s *Set) Disable(site string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.points, site)
}

// Hits reports how many times the named site has fired since it was armed.
func (s *Set) Hits(site string) uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if pt := s.points[site]; pt != nil {
		return pt.hits
	}
	return 0
}

// Calls reports how many times execution passed through the named site
// since it was armed (fired or not).
func (s *Set) Calls(site string) uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if pt := s.points[site]; pt != nil {
		return pt.calls
	}
	return 0
}

// Eval records one call through the site and returns the action to apply
// when the site fires. A panic action panics here. Nil sets and unarmed
// sites never fire.
func (s *Set) Eval(site string) (Action, bool) {
	if s == nil {
		return Action{}, false
	}
	s.mu.Lock()
	pt := s.points[site]
	if pt == nil {
		s.mu.Unlock()
		return Action{}, false
	}
	pt.calls++
	fired := pt.policy(pt.calls)
	if fired {
		pt.hits++
	}
	a := pt.action
	s.mu.Unlock()
	if !fired {
		return Action{}, false
	}
	s.hits.Inc()
	if a.PanicMsg != "" {
		panic("fault: " + site + ": " + a.PanicMsg)
	}
	return a, true
}

// Check is Eval for sites with no torn-write notion: it returns the
// action's error when the site fires and nil otherwise.
func (s *Set) Check(site string) error {
	a, fired := s.Eval(site)
	if !fired {
		return nil
	}
	return a.err()
}
