package fault

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/metrics"
)

func TestNilSetNeverFires(t *testing.T) {
	var s *Set
	if err := s.Check("anything"); err != nil {
		t.Fatalf("nil set fired: %v", err)
	}
	if s.Hits("anything") != 0 || s.Calls("anything") != 0 {
		t.Error("nil set reports activity")
	}
}

func TestUnarmedSitePassesThrough(t *testing.T) {
	s := NewSet(metrics.NewRegistry())
	for i := 0; i < 10; i++ {
		if err := s.Check("quiet"); err != nil {
			t.Fatalf("unarmed site fired: %v", err)
		}
	}
	if s.Calls("quiet") != 0 {
		t.Error("unarmed site counted calls")
	}
}

func TestOnCallFiresExactlyOnce(t *testing.T) {
	s := NewSet(metrics.NewRegistry())
	s.Enable("x", OnCall(3), Action{})
	var errs []error
	for i := 0; i < 6; i++ {
		errs = append(errs, s.Check("x"))
	}
	for i, err := range errs {
		want := i == 2 // third call, 0-indexed
		if (err != nil) != want {
			t.Errorf("call %d: err=%v, want fired=%v", i+1, err, want)
		}
	}
	if !errors.Is(errs[2], ErrInjected) {
		t.Errorf("default action error = %v, want ErrInjected", errs[2])
	}
	if s.Hits("x") != 1 || s.Calls("x") != 6 {
		t.Errorf("hits=%d calls=%d, want 1 and 6", s.Hits("x"), s.Calls("x"))
	}
}

func TestEveryNth(t *testing.T) {
	s := NewSet(metrics.NewRegistry())
	s.Enable("x", EveryNth(3), Action{})
	fired := 0
	for i := 0; i < 9; i++ {
		if s.Check("x") != nil {
			fired++
		}
	}
	if fired != 3 {
		t.Errorf("EveryNth(3) fired %d of 9, want 3", fired)
	}
}

func TestProbabilitySeededAndReproducible(t *testing.T) {
	run := func(seed int64) []bool {
		s := NewSet(metrics.NewRegistry())
		s.Enable("x", Probability(0.5, seed), Action{})
		out := make([]bool, 64)
		for i := range out {
			out[i] = s.Check("x") != nil
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Errorf("p=0.5 fired %d of %d — degenerate", fired, len(a))
	}
}

func TestCustomErrorAndPanicActions(t *testing.T) {
	s := NewSet(metrics.NewRegistry())
	sentinel := errors.New("disk on fire")
	s.Enable("x", OnCall(1), Action{Err: sentinel})
	if err := s.Check("x"); !errors.Is(err, sentinel) {
		t.Errorf("custom error not returned: %v", err)
	}

	s.Enable("boom", OnCall(1), Action{PanicMsg: "crash here"})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic action did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "crash here") {
			t.Errorf("panic payload %v", r)
		}
	}()
	_ = s.Check("boom")
}

func TestHitCounterExported(t *testing.T) {
	reg := metrics.NewRegistry()
	s := NewSet(reg)
	s.Enable("x", EveryNth(1), Action{})
	for i := 0; i < 5; i++ {
		_ = s.Check("x")
	}
	for _, m := range reg.Snapshot() {
		if m.Name == "fault_hits_total" {
			if m.Value != 5 {
				t.Errorf("fault_hits_total = %v, want 5", m.Value)
			}
			return
		}
	}
	t.Error("fault_hits_total not registered")
}

func TestDisableAndRearm(t *testing.T) {
	s := NewSet(metrics.NewRegistry())
	s.Enable("x", EveryNth(1), Action{})
	if s.Check("x") == nil {
		t.Fatal("armed site did not fire")
	}
	s.Disable("x")
	if err := s.Check("x"); err != nil {
		t.Fatalf("disabled site fired: %v", err)
	}
	s.Enable("x", OnCall(1), Action{})
	if s.Check("x") == nil {
		t.Error("rearmed site did not fire (counter not reset)")
	}
}

func TestSetConcurrentHammer(t *testing.T) {
	s := NewSet(metrics.NewRegistry())
	s.Enable("x", EveryNth(2), Action{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				_ = s.Check("x")
			}
		}()
	}
	wg.Wait()
	if got := s.Calls("x"); got != 8000 {
		t.Errorf("calls = %d, want 8000", got)
	}
	if got := s.Hits("x"); got != 4000 {
		t.Errorf("hits = %d, want 4000", got)
	}
}

func TestOSFSRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	f, err := OS.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := f.Read(buf); err != nil || string(buf) != "hello" {
		t.Fatalf("read %q, %v", buf, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OS.Stat(path); err != nil {
		t.Fatal(err)
	}
	if err := OS.Rename(path, path+"2"); err != nil {
		t.Fatal(err)
	}
	if err := OS.Remove(path + "2"); err != nil {
		t.Fatal(err)
	}
}

func TestInjectFSTornWrite(t *testing.T) {
	set := NewSet(metrics.NewRegistry())
	fsys := NewFS(OS, set)
	path := filepath.Join(t.TempDir(), "f")
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	set.Enable(SiteWrite, OnCall(2), Action{Partial: 3})
	if _, err := f.Write([]byte("first")); err != nil {
		t.Fatalf("pre-fault write failed: %v", err)
	}
	n, err := f.Write([]byte("second"))
	if err == nil {
		t.Fatal("torn write did not error")
	}
	if n != 3 {
		t.Errorf("torn write reported %d bytes, want 3", n)
	}
	set.Disable(SiteWrite)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "firstsec" {
		t.Errorf("on-disk state %q, want %q (prefix persisted, tail torn)", data, "firstsec")
	}
}

func TestInjectFSOperationSites(t *testing.T) {
	set := NewSet(metrics.NewRegistry())
	fsys := NewFS(OS, set)
	dir := t.TempDir()
	path := filepath.Join(dir, "f")

	set.Enable(SiteOpen, OnCall(1), Action{})
	if _, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644); err == nil {
		t.Error("open fault not injected")
	}
	set.Disable(SiteOpen)

	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	set.Enable(SiteSync, OnCall(1), Action{})
	if err := f.Sync(); err == nil {
		t.Error("sync fault not injected")
	}
	set.Enable(SiteTruncate, OnCall(1), Action{})
	if err := f.Truncate(0); err == nil {
		t.Error("truncate fault not injected")
	}
	set.Enable(SiteSeek, OnCall(1), Action{})
	if _, err := f.Seek(0, 0); err == nil {
		t.Error("seek fault not injected")
	}
	set.Enable(SiteRead, OnCall(1), Action{})
	if _, err := f.Read(make([]byte, 1)); err == nil {
		t.Error("read fault not injected")
	}
	set.Enable(SiteClose, OnCall(1), Action{})
	if err := f.Close(); err == nil {
		t.Error("close fault not injected")
	}

	set.Enable(SiteRename, OnCall(1), Action{})
	if err := fsys.Rename(path, path+"2"); err == nil {
		t.Error("rename fault not injected")
	}
	set.Enable(SiteStat, OnCall(1), Action{})
	if _, err := fsys.Stat(path); err == nil {
		t.Error("stat fault not injected")
	}
	set.Enable(SiteRemove, OnCall(1), Action{})
	if err := fsys.Remove(path); err == nil {
		t.Error("remove fault not injected")
	}

	// Everything disarmed again: the wrapper is transparent.
	if _, err := fsys.Stat(path); err != nil {
		t.Errorf("stat after disarm: %v", err)
	}
}
