package trajcomp_test

import (
	"fmt"

	trajcomp "repro"
)

// A trajectory is a series of time-stamped positions; compressing it with
// the paper's TD-TR algorithm keeps the synchronized error under the
// threshold while discarding redundant points.
func ExampleNewTDTR() {
	// An object that crawls, then sprints along a straight road. Spatially
	// it is a perfect line, but its timing is far from uniform.
	p := trajcomp.Trajectory{
		trajcomp.S(0, 0, 0),
		trajcomp.S(60, 60, 0),  // 1 m/s crawl
		trajcomp.S(70, 310, 0), // 25 m/s sprint
		trajcomp.S(80, 560, 0),
		trajcomp.S(90, 810, 0),
	}
	a := trajcomp.NewTDTR(30).Compress(p)
	e, _ := trajcomp.AvgError(p, a)
	fmt.Printf("kept %d of %d points, error %.1f m\n", a.Len(), p.Len(), e)
	// Output:
	// kept 3 of 5 points, error 0.0 m
}

// Classic Douglas-Peucker sees only the line's shape: it collapses the same
// trajectory to its endpoints and commits a large synchronized error.
func ExampleNewDouglasPeucker() {
	p := trajcomp.Trajectory{
		trajcomp.S(0, 0, 0),
		trajcomp.S(60, 60, 0),
		trajcomp.S(70, 310, 0),
		trajcomp.S(80, 560, 0),
		trajcomp.S(90, 810, 0),
	}
	a := trajcomp.NewDouglasPeucker(30).Compress(p)
	e, _ := trajcomp.AvgError(p, a)
	fmt.Printf("kept %d of %d points, error %.0f m\n", a.Len(), p.Len(), e)
	// Output:
	// kept 2 of 5 points, error 240 m
}

// The synchronized distance is the paper's Eq. 1–2: where the approximation
// says the object should be at the original point's timestamp.
func ExampleSyncDistance() {
	start := trajcomp.S(0, 0, 0)
	end := trajcomp.S(10, 100, 0)
	// At t=9 the object has only reached x=10; the segment expects x'=90.
	d := trajcomp.SyncDistance(trajcomp.S(9, 10, 0), start, end)
	fmt.Printf("%.0f m\n", d)
	// Output:
	// 80 m
}

// Online compression emits retained points as their fate becomes definite.
func ExampleCollect() {
	var p trajcomp.Trajectory
	for i := 0; i <= 10; i++ {
		p = append(p, trajcomp.S(float64(i), float64(i*10), 0))
	}
	// Constant-velocity motion: everything between the endpoints drops.
	a, _ := trajcomp.Collect(trajcomp.NewOnlineOPWTR(5, 0), p)
	fmt.Println(a.Len(), "points retained")
	// Output:
	// 2 points retained
}

// Algorithms are also constructable from compact textual specs (CLI-style).
func ExampleParseAlgorithm() {
	alg, err := trajcomp.ParseAlgorithm("opwsp:30:5")
	if err != nil {
		panic(err)
	}
	fmt.Println(alg.Name())
	// Output:
	// OPW-SP(5m/s)
}

// The moving-object store answers spatiotemporal range queries over
// compressed trajectories.
func ExampleStore() {
	st := trajcomp.NewStore(trajcomp.StoreOptions{})
	for i := 0; i <= 10; i++ {
		_ = st.Append("bus", trajcomp.S(float64(i*10), float64(i*100), 0))
	}
	hits := st.Query(trajcomp.Rect{
		Min: trajcomp.Point{X: 450, Y: -50},
		Max: trajcomp.Point{X: 550, Y: 50},
	}, 0, 100)
	fmt.Println(hits)
	// Output:
	// [bus]
}

// An embedded store exposes its observability through a metrics registry:
// pass one in StoreOptions.Metrics and read a snapshot back. A perfectly
// straight constant-speed stream compresses to its endpoints, and the live
// counters show the compression happening.
func ExampleNewStore_metrics() {
	reg := trajcomp.NewMetricsRegistry()
	st := trajcomp.NewStore(trajcomp.StoreOptions{
		NewCompressor: func() trajcomp.Compressor { return trajcomp.NewOnlineOPWTR(25, 0) },
		Metrics:       reg,
	})
	for i := 0; i < 100; i++ {
		_ = st.Append("car", trajcomp.S(float64(i), float64(i*10), 0))
	}
	for _, m := range reg.Snapshot() {
		switch m.Name {
		case "store_appends_total", "stream_points_in_total",
			"stream_points_out_total", "stream_buffered_samples":
			fmt.Printf("%s %.0f\n", m.Name, m.Value)
		}
	}
	// Output:
	// store_appends_total 100
	// stream_buffered_samples 100
	// stream_points_in_total 100
	// stream_points_out_total 1
}
